"""Property tests for the hot-swap slot: losslessness under fuzzing.

Hypothesis drives random swap timelines against random arrival/dispatch
timelines and random batching policies. Whatever the interleaving:

* every offered request is either completed or shed by admission
  control — a swap never drops or duplicates a request;
* every response is answered by exactly one snapshot — the one active
  at its batch's dispatch time;
* the swap timeline itself is monotone (versions strictly increase,
  publish times never run backwards), and so is the version sequence
  observed by dispatch order;
* the *schedule* (dispatch/completion times, batch shapes, sheds) is
  bitwise independent of the swap timeline — hot-swap never re-prices
  or delays an in-flight request.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import DLRM
from repro.online import ModelSlot
from repro.serving import (BatchingPolicy, FreezeConfig, InferenceRequest,
                           InferenceServer, ServingPerfModel, freeze)

from .helpers import tiny_system

SYS = tiny_system()
# one frozen artifact per publish: same architecture (the slot demands
# it) but *different* weights, so binding the wrong version to a batch
# would produce visibly different predictions
SNAPSHOT_POOL = [freeze(DLRM(SYS.config, seed=k)) for k in range(9)]
BULK = SYS.dataset.batch(32, batch_index=0)


def make_requests(arrivals):
    return [InferenceRequest(request_id=i, arrival_s=t,
                             batch=BULK.slice(i % 32, i % 32 + 1))
            for i, t in enumerate(arrivals)]


def make_slot(publish_times):
    slot = ModelSlot(SNAPSHOT_POOL[0], step=0, publish_s=0.0)
    for i, t in enumerate(sorted(publish_times)):
        slot.publish(SNAPSHOT_POOL[(i + 1) % len(SNAPSHOT_POOL)],
                     step=i + 1, publish_s=t)
    return slot


# strategy pieces: virtual times within a few service times of t=0 so
# swaps genuinely interleave with queueing and dispatch
times = st.floats(min_value=0.0, max_value=0.03,
                  allow_nan=False, allow_infinity=False)
swap_timelines = st.lists(times, min_size=0, max_size=8)
arrival_lists = st.lists(times, min_size=1, max_size=24).map(sorted)
policies = st.builds(
    BatchingPolicy,
    max_batch_size=st.sampled_from([1, 2, 4, 8]),
    max_wait_s=st.sampled_from([0.0, 1e-4, 2e-3]))


class TestSwapProperties:
    @settings(max_examples=30, deadline=None)
    @given(publishes=swap_timelines, arrivals=arrival_lists,
           policy=policies)
    def test_conservation_no_drop_no_dup(self, publishes, arrivals, policy):
        requests = make_requests(arrivals)
        slot = make_slot(publishes)
        result = InferenceServer(slot.active.model, policy).serve(
            requests, slot=slot)
        completed = [o.request_id for o in result.outcomes]
        assert len(set(completed)) == len(completed)  # no duplicates
        assert set(completed) | set(result.shed_ids) == \
            {r.request_id for r in requests}          # no drops
        assert not set(completed) & set(result.shed_ids)
        assert result.num_completed + result.num_shed == len(requests)
        assert set(result.responses) == set(completed)

    @settings(max_examples=30, deadline=None)
    @given(publishes=swap_timelines, arrivals=arrival_lists,
           policy=policies)
    def test_each_response_binds_one_version(self, publishes, arrivals,
                                             policy):
        requests = make_requests(arrivals)
        slot = make_slot(publishes)
        result = InferenceServer(slot.active.model, policy).serve(
            requests, slot=slot)
        for o in result.outcomes:
            snap = slot.snapshot_at(o.dispatch_s)
            assert o.model_version == snap.version
            # and the response is the bound snapshot's answer (up to
            # BLAS kernel selection across batch shapes, as in the
            # server suite — never a different snapshot's answer)
            req = requests[o.request_id]
            np.testing.assert_allclose(
                result.responses[o.request_id],
                snap.model.predict(req.batch), rtol=1e-6, atol=1e-6)
        per_version = result.requests_per_version()
        assert sum(per_version.values()) == result.num_completed
        assert all(0 <= v < len(slot.history) for v in per_version)

    @settings(max_examples=30, deadline=None)
    @given(publishes=swap_timelines, arrivals=arrival_lists,
           policy=policies)
    def test_versions_monotone(self, publishes, arrivals, policy):
        requests = make_requests(arrivals)
        slot = make_slot(publishes)
        versions = [s.version for s in slot.history]
        assert versions == list(range(len(slot.history)))
        pub = [s.publish_s for s in slot.history]
        assert all(a <= b for a, b in zip(pub, pub[1:]))
        result = InferenceServer(slot.active.model, policy).serve(
            requests, slot=slot)
        by_dispatch = sorted(result.outcomes,
                             key=lambda o: (o.dispatch_s, o.request_id))
        seen = [o.model_version for o in by_dispatch]
        assert all(a <= b for a, b in zip(seen, seen[1:]))

    @settings(max_examples=30, deadline=None)
    @given(publishes=swap_timelines, arrivals=arrival_lists,
           policy=policies)
    def test_schedule_is_swap_invariant(self, publishes, arrivals, policy):
        """The batch plan priced with swaps must equal the plan without:
        same dispatches, same completions, same sheds — bit for bit."""
        requests = make_requests(arrivals)
        slot = make_slot(publishes)
        server = InferenceServer(slot.history[0].model, policy)
        with_swaps = server.serve(requests, slot=slot)
        without = server.serve(make_requests(arrivals))
        assert [(o.request_id, o.dispatch_s, o.completion_s,
                 o.batch_samples) for o in with_swaps.outcomes] == \
            [(o.request_id, o.dispatch_s, o.completion_s,
              o.batch_samples) for o in without.outcomes]
        assert with_swaps.shed_ids == without.shed_ids

    @settings(max_examples=20, deadline=None)
    @given(publishes=swap_timelines, arrivals=arrival_lists)
    def test_conservation_holds_under_shedding(self, publishes, arrivals):
        """Swaps racing an overloaded queue still never leak a request:
        everything not completed was shed by admission, not by the swap."""
        requests = make_requests(arrivals)
        slot = make_slot(publishes)
        server = InferenceServer(
            slot.active.model,
            BatchingPolicy(max_batch_size=2, max_wait_s=0.0,
                           max_queue_depth=2),
            ServingPerfModel(overhead_s=5e-3))  # queue must overflow
        result = server.serve(requests, slot=slot)
        assert result.num_completed + result.num_shed == len(requests)
        assert set(o.request_id for o in result.outcomes) | \
            set(result.shed_ids) == {r.request_id for r in requests}


class TestSlotValidation:
    def test_initial_install_is_version_zero(self):
        slot = ModelSlot(SNAPSHOT_POOL[0], step=3, publish_s=1.5)
        assert slot.version == 0
        assert slot.num_swaps == 0
        assert slot.active.step == 3
        assert slot.standby is None

    def test_publish_flips_active_and_keeps_standby(self):
        slot = make_slot([0.5])
        assert slot.version == 1
        assert slot.num_swaps == 1
        assert slot.standby is not None
        assert slot.standby.version == 0
        assert slot.active.publish_s == 0.5

    def test_snapshot_at_resolves_boundaries(self):
        slot = make_slot([0.5, 1.0])
        assert slot.snapshot_at(0.0).version == 0
        assert slot.snapshot_at(0.49).version == 0
        assert slot.snapshot_at(0.5).version == 1   # inclusive at publish
        assert slot.snapshot_at(0.99).version == 1
        assert slot.snapshot_at(5.0).version == 2
        with pytest.raises(ValueError):
            ModelSlot(SNAPSHOT_POOL[0], publish_s=1.0).snapshot_at(0.5)

    def test_snapshot_lookup_by_version(self):
        slot = make_slot([0.5])
        assert slot.snapshot(0).version == 0
        assert slot.snapshot(1) is slot.active
        with pytest.raises(KeyError):
            slot.snapshot(2)
        with pytest.raises(KeyError):
            slot.snapshot(-1)

    def test_rejects_architecture_change(self):
        other = tiny_system(num_tables=2).servable
        slot = ModelSlot(SNAPSHOT_POOL[0])
        with pytest.raises(ValueError, match="architecture"):
            slot.publish(other, step=1, publish_s=1.0)

    def test_rejects_precision_change(self):
        quant = freeze(SYS.model, FreezeConfig(precision="fp16"))
        slot = ModelSlot(SNAPSHOT_POOL[0])
        with pytest.raises(ValueError, match="precision"):
            slot.publish(quant, step=1, publish_s=1.0)

    def test_rejects_time_or_step_regression(self):
        slot = ModelSlot(SNAPSHOT_POOL[0], step=5, publish_s=2.0)
        with pytest.raises(ValueError, match="step"):
            slot.publish(SNAPSHOT_POOL[1], step=4, publish_s=3.0)
        with pytest.raises(ValueError, match="publish time"):
            slot.publish(SNAPSHOT_POOL[1], step=6, publish_s=1.0)

    def test_metrics_and_spans_on_publish(self):
        from repro.obs import MetricRegistry, Tracer
        registry = MetricRegistry()
        tracer = Tracer(clock="logical")
        slot = ModelSlot(SNAPSHOT_POOL[0], tracer=tracer, metrics=registry)
        slot.publish(SNAPSHOT_POOL[1], step=1, publish_s=0.1)
        slot.publish(SNAPSHOT_POOL[2], step=2, publish_s=0.2)
        snap = registry.snapshot()
        assert snap["serving.swaps"] == 2
        assert snap["serving.model_version"] == 2
        swaps = [e for e in tracer.trace.closed_events()
                 if e.name == "serving.swap"]
        assert [e.args["version"] for e in swaps] == [1, 2]

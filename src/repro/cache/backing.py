"""Backing stores for cached embedding rows.

A backing store is the slower memory tier behind the software cache: DRAM
behind HBM, or SSD behind DRAM. It serves whole rows and counts bytes
moved, which is what the cache-vs-UVM comparison (paper Section 4.1.3)
ultimately measures — PCIe traffic avoided by caching.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayBackingStore"]


class ArrayBackingStore:
    """Row store over a dense numpy array with transfer accounting."""

    def __init__(self, rows: np.ndarray) -> None:
        if rows.ndim != 2:
            raise ValueError(f"expected (H, D) rows, got shape {rows.shape}")
        self.rows = rows.astype(np.float32)
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def num_rows(self) -> int:
        return self.rows.shape[0]

    @property
    def row_dim(self) -> int:
        return self.rows.shape[1]

    @property
    def row_bytes(self) -> int:
        return self.row_dim * 4

    def read_rows(self, row_ids: np.ndarray) -> np.ndarray:
        self.bytes_read += len(row_ids) * self.row_bytes
        return self.rows[row_ids].copy()

    def write_rows(self, row_ids: np.ndarray, values: np.ndarray) -> None:
        self.bytes_written += len(row_ids) * self.row_bytes
        self.rows[row_ids] = values

    def reset_counters(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0

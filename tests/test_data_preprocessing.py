"""Tests for reader-side preprocessing transforms."""

import numpy as np
import pytest

from repro.data import (DenseNormalizer, FeatureHasher, LogTransform,
                        MiniBatch, MissingValueImputer, SyntheticCTRDataset,
                        TransformPipeline)
from repro.embedding import EmbeddingTableConfig


def make_batch(batch=16, dense_dim=4, seed=0):
    tables = [EmbeddingTableConfig("t0", 1000, 8, avg_pooling=3.0)]
    ds = SyntheticCTRDataset(tables, dense_dim=dense_dim, seed=seed)
    return ds.batch(batch)


class TestLogTransform:
    def test_values(self):
        b = make_batch()
        b.dense[0, 0] = np.e - 1.0
        b.dense[0, 1] = -5.0
        out = LogTransform().apply(b)
        assert out.dense[0, 0] == pytest.approx(1.0)
        assert out.dense[0, 1] == 0.0

    def test_does_not_mutate_input(self):
        b = make_batch()
        original = b.dense.copy()
        LogTransform().apply(b)
        np.testing.assert_array_equal(b.dense, original)


class TestImputer:
    def test_fills_nans(self):
        b = make_batch()
        b.dense[1, 2] = np.nan
        out = MissingValueImputer(fill_value=-1.0).apply(b)
        assert out.dense[1, 2] == -1.0
        assert not np.any(np.isnan(out.dense))


class TestDenseNormalizer:
    def test_standardizes_stream(self):
        norm = DenseNormalizer()
        rng = np.random.default_rng(0)
        for i in range(20):
            b = make_batch(batch=64, seed=i)
            b.dense = (b.dense * 3.0 + 5.0).astype(np.float32)
            out = norm.apply(b)
        # after many batches the output stream is ~standardized
        assert np.abs(out.dense.mean()) < 0.3
        assert out.dense.std() == pytest.approx(1.0, rel=0.2)

    def test_running_stats_match_batch_stats(self):
        """Accumulated mean/std equal the dataset-level statistics."""
        norm = DenseNormalizer()
        all_dense = []
        for i in range(10):
            b = make_batch(batch=32, seed=i)
            all_dense.append(b.dense.astype(np.float64))
            norm.apply(b)
        stacked = np.concatenate(all_dense)
        np.testing.assert_allclose(norm.mean, stacked.mean(axis=0),
                                   rtol=1e-10)
        np.testing.assert_allclose(norm.std, stacked.std(axis=0),
                                   rtol=1e-10)

    def test_distributed_merge_exact(self):
        """Two readers' merged statistics == one reader's statistics —
        the Chan parallel-merge property, bit-for-bit in float64."""
        batches = [make_batch(batch=32, seed=i) for i in range(8)]
        single = DenseNormalizer()
        for b in batches:
            single.apply(b)
        left, right = DenseNormalizer(), DenseNormalizer()
        for b in batches[:4]:
            left.apply(b)
        for b in batches[4:]:
            right.apply(b)
        left.merge(right)
        np.testing.assert_allclose(left.mean, single.mean, rtol=1e-12)
        np.testing.assert_allclose(left.m2, single.m2, rtol=1e-12)
        assert left.count == single.count

    def test_merge_into_empty(self):
        a, b = DenseNormalizer(), DenseNormalizer()
        b.apply(make_batch())
        a.merge(b)
        assert a.count == b.count

    def test_frozen_stops_updates(self):
        norm = DenseNormalizer()
        norm.apply(make_batch(seed=0))
        norm.frozen = True
        count = norm.count
        norm.apply(make_batch(seed=1))
        assert norm.count == count

    def test_constant_feature_not_divided_by_zero(self):
        norm = DenseNormalizer()
        b = make_batch()
        b.dense[:, 0] = 7.0
        norm.apply(b)
        out = norm.apply(b)
        assert np.all(np.isfinite(out.dense))


class TestFeatureHasher:
    def test_folds_into_range(self):
        tables = [EmbeddingTableConfig("t0", 100, 8)]
        b = make_batch()
        out = FeatureHasher(tables).apply(b)
        ids, _ = out.sparse["t0"]
        assert ids.max() < 100

    def test_missing_table_raises(self):
        b = make_batch()
        with pytest.raises(KeyError):
            FeatureHasher([EmbeddingTableConfig("other", 10, 8)]).apply(b)

    def test_offsets_preserved(self):
        tables = [EmbeddingTableConfig("t0", 100, 8)]
        b = make_batch()
        out = FeatureHasher(tables).apply(b)
        np.testing.assert_array_equal(out.sparse["t0"][1],
                                      b.sparse["t0"][1])


class TestPipeline:
    def test_composition_order(self):
        """Impute -> log -> normalize runs left to right."""
        pipeline = TransformPipeline([
            MissingValueImputer(fill_value=0.0),
            LogTransform(),
        ])
        b = make_batch()
        b.dense[0, 0] = np.nan
        out = pipeline.apply(b)
        assert out.dense[0, 0] == 0.0  # imputed to 0, log1p(0) = 0

    def test_empty_pipeline_is_identity(self):
        b = make_batch()
        out = TransformPipeline([]).apply(b)
        np.testing.assert_array_equal(out.dense, b.dense)

    def test_callable_interface(self):
        b = make_batch()
        out = LogTransform()(b)
        assert out.dense.shape == b.dense.shape

"""Tests for feature hashing and the shrunk-model methodology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (SyntheticCTRDataset, hash_indices, shrink_batch,
                        shrink_table_configs)
from repro.embedding import EmbeddingTableConfig


class TestHashIndices:
    def test_range(self):
        ids = hash_indices(np.arange(10_000), 128)
        assert ids.min() >= 0 and ids.max() < 128

    def test_deterministic(self):
        a = hash_indices(np.arange(100), 32, salt=5)
        b = hash_indices(np.arange(100), 32, salt=5)
        np.testing.assert_array_equal(a, b)

    def test_salt_decorrelates(self):
        a = hash_indices(np.arange(1000), 128, salt=0)
        b = hash_indices(np.arange(1000), 128, salt=1)
        assert np.mean(a == b) < 0.1

    def test_roughly_uniform(self):
        ids = hash_indices(np.arange(100_000), 64)
        counts = np.bincount(ids, minlength=64)
        assert counts.min() > 0.7 * counts.mean()
        assert counts.max() < 1.3 * counts.mean()

    def test_preserves_equal_inputs(self):
        """Same raw id always folds to the same bucket (cache locality of
        hot ids is preserved by hashing — key for the shrunk model to
        keep its performance characteristics)."""
        ids = np.array([7, 7, 7, 12, 7], dtype=np.int64)
        hashed = hash_indices(ids, 16)
        assert len(set(hashed[[0, 1, 2, 4]])) == 1

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            hash_indices(np.arange(4), 0)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50)
    def test_range_property(self, buckets):
        ids = hash_indices(np.arange(257), buckets)
        assert np.all((0 <= ids) & (ids < buckets))


class TestShrinkConfigs:
    def test_caps_rows(self):
        tables = [EmbeddingTableConfig("big", 10 ** 7, 16),
                  EmbeddingTableConfig("small", 100, 16)]
        shrunk = shrink_table_configs(tables, max_rows=1000)
        assert shrunk[0].num_embeddings == 1000
        assert shrunk[1].num_embeddings == 100  # already small: untouched

    def test_preserves_other_fields(self):
        tables = [EmbeddingTableConfig("t", 10 ** 6, 32, avg_pooling=7.0)]
        shrunk = shrink_table_configs(tables, max_rows=100)
        assert shrunk[0].embedding_dim == 32
        assert shrunk[0].avg_pooling == 7.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            shrink_table_configs([], max_rows=0)


class TestShrinkBatch:
    def make(self):
        full = [EmbeddingTableConfig(f"t{i}", 100_000, 8, avg_pooling=4.0)
                for i in range(2)]
        ds = SyntheticCTRDataset(full, dense_dim=4, seed=0)
        batch = ds.batch(32)
        shrunk = shrink_table_configs(full, max_rows=500)
        return batch, shrunk

    def test_ids_within_shrunk_range(self):
        batch, shrunk = self.make()
        small = shrink_batch(batch, shrunk)
        for name, (ids, _) in small.sparse.items():
            assert ids.max() < 500

    def test_structure_preserved(self):
        batch, shrunk = self.make()
        small = shrink_batch(batch, shrunk)
        for name in batch.sparse:
            np.testing.assert_array_equal(small.sparse[name][1],
                                          batch.sparse[name][1])
        np.testing.assert_array_equal(small.dense, batch.dense)
        np.testing.assert_array_equal(small.labels, batch.labels)

    def test_deterministic(self):
        batch, shrunk = self.make()
        a = shrink_batch(batch, shrunk)
        b = shrink_batch(batch, shrunk)
        for name in a.sparse:
            np.testing.assert_array_equal(a.sparse[name][0],
                                          b.sparse[name][0])

    def test_missing_table_raises(self):
        batch, shrunk = self.make()
        with pytest.raises(KeyError):
            shrink_batch(batch, shrunk[:1])

    def test_shrunk_model_trains(self):
        """The 5.3.1 workflow end to end: full-cardinality stream, hashed
        into a shrunk model, still learns."""
        from repro import nn
        from repro.embedding import SparseSGD
        from repro.models import DLRM, DLRMConfig

        full = tuple(EmbeddingTableConfig(f"t{i}", 50_000, 8,
                                          avg_pooling=3.0)
                     for i in range(2))
        shrunk = shrink_table_configs(full, max_rows=256)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=shrunk,
                            top_mlp=(8,))
        ds = SyntheticCTRDataset(full, dense_dim=4, noise=0.2, seed=1)
        model = DLRM(config, seed=0)
        opt = nn.Adam(model.dense_parameters(), lr=0.01)
        sparse = SparseSGD(lr=0.1)
        losses = []
        for i in range(60):
            batch = shrink_batch(ds.batch(64, i), shrunk)
            losses.append(model.train_step(batch, opt, sparse))
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

"""Tests for DDP-style gradient bucketing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.comms import collectives as C
from repro.comms.bucketing import GradientBucketer


def make_params(shapes, seed=0):
    rng = np.random.default_rng(seed)
    return [nn.Parameter(rng.normal(size=s).astype(np.float32))
            for s in shapes]


def make_grads(shapes, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=s).astype(np.float32) for s in shapes]


class TestBucketAssignment:
    def test_single_bucket_for_small_model(self):
        params = make_params([(4, 4), (8,), (2, 2)])
        b = GradientBucketer(params)  # default 25 MB
        assert b.num_buckets == 1
        assert b.buckets[0].num_elements == 16 + 8 + 4

    def test_splits_at_capacity(self):
        params = make_params([(100,), (100,), (100,)])
        b = GradientBucketer(params, bucket_bytes=100 * 4)
        assert b.num_buckets == 3

    def test_reverse_order_packing(self):
        """DDP heuristic: last parameters (ready first) pack first."""
        params = make_params([(10,), (20,), (30,)])
        b = GradientBucketer(params, bucket_bytes=55 * 4)
        assert b.buckets[0].param_indices == (2, 1)
        assert b.buckets[1].param_indices == (0,)

    def test_oversized_param_gets_own_bucket(self):
        params = make_params([(1000,), (10,)])
        b = GradientBucketer(params, bucket_bytes=100 * 4)
        assert b.num_buckets == 2

    def test_invalid_bucket_bytes(self):
        with pytest.raises(ValueError):
            GradientBucketer(make_params([(2,)]), bucket_bytes=0)


class TestFlattenUnflatten:
    def test_round_trip(self):
        shapes = [(3, 4), (7,), (2, 2, 2)]
        b = GradientBucketer(make_params(shapes), bucket_bytes=40)
        grads = make_grads(shapes)
        back = b.unflatten(b.flatten(grads))
        for g, r in zip(grads, back):
            np.testing.assert_array_equal(g, r)

    def test_wrong_grad_count(self):
        b = GradientBucketer(make_params([(2,), (2,)]))
        with pytest.raises(ValueError):
            b.flatten([np.zeros(2, dtype=np.float32)])

    def test_wrong_grad_shape(self):
        b = GradientBucketer(make_params([(2,)]))
        with pytest.raises(ValueError):
            b.flatten([np.zeros(3, dtype=np.float32)])

    def test_wrong_bucket_count(self):
        b = GradientBucketer(make_params([(2,)]))
        with pytest.raises(ValueError):
            b.unflatten([])

    def test_wrong_flat_size(self):
        b = GradientBucketer(make_params([(2,)]))
        with pytest.raises(ValueError):
            b.unflatten([np.zeros(5, dtype=np.float32)])

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1,
                    max_size=12),
           st.integers(min_value=4, max_value=200))
    @settings(max_examples=40)
    def test_round_trip_property(self, sizes, cap_elems):
        shapes = [(s,) for s in sizes]
        b = GradientBucketer(make_params(shapes),
                             bucket_bytes=cap_elems * 4)
        grads = make_grads(shapes, seed=sum(sizes))
        back = b.unflatten(b.flatten(grads))
        for g, r in zip(grads, back):
            np.testing.assert_array_equal(g, r)
        # every element lands in exactly one bucket
        assert sum(bk.num_elements for bk in b.buckets) == sum(sizes)


class TestBucketedAllReduce:
    def test_numerically_identical_to_per_param(self):
        """Bucketed AllReduce == per-parameter AllReduce, exactly."""
        world = 4
        shapes = [(5, 3), (8,), (4, 4)]
        b = GradientBucketer(make_params(shapes), bucket_bytes=30 * 4)
        per_rank_grads = [make_grads(shapes, seed=r) for r in range(world)]

        # per-parameter path
        expected = []
        for i in range(len(shapes)):
            expected.append(C.all_reduce(
                [per_rank_grads[r][i] for r in range(world)])[0])

        # bucketed path
        flats = [b.flatten(per_rank_grads[r]) for r in range(world)]
        reduced_buckets = []
        for k in range(b.num_buckets):
            reduced_buckets.append(C.all_reduce(
                [flats[r][k] for r in range(world)])[0])
        got = b.unflatten(reduced_buckets)
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_fewer_collectives_than_params(self):
        """The point of bucketing: a 26-layer MLP syncs in O(1) calls."""
        mlp = nn.MLP([64] * 27, rng=np.random.default_rng(0))
        b = GradientBucketer(mlp.parameters())
        assert len(mlp.parameters()) == 52
        assert b.num_buckets == 1

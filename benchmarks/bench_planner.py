"""Planner benchmark: mixed-representation memory wins and multi-tenant
SLO isolation.

Two gates, both deterministic (same seed, same JSON, any machine):

* **mixed vs uniform** — a planted six-table DLRM with one
  quality-sensitive table (weights amplified 50x, so bf16/int8 breach
  the element-error floor), two exactly-TT-structured history tables
  (rank-2 cores materialized back into the weights) and three ordinary
  tables. The planner gets a 25% hot-memory budget plus the quality
  floor and a measured-NE floor; every uniform single-path baseline
  (full/fp16/bf16/int8) is scored against the same floor. The gate:
  the mixed plan must satisfy budget + floors AND use strictly fewer
  hot bytes than *every* floor-feasible uniform baseline;
* **tenant isolation** — three tenants (serving-zoo small/medium/large)
  with skewed traffic shares and per-tenant SLOs, served on a
  scaled-down platform whose per-node HBM fits any single tenant's
  frozen artifact but not all three together. The planner-partitioned
  fleet (demand-weighted replica subsets, one tenant per replica) must
  hold every SLO where the naive tenant-blind shared fleet — every
  replica co-hosting all three models, HBM overflowing into the DRAM
  link — misses at least one.

Run standalone to write ``BENCH_planner.json``::

    PYTHONPATH=src python benchmarks/bench_planner.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, TTEmbeddingTable
from repro.fleet import MultiTenantFleet, TenantSpec
from repro.models import DLRM, DLRMConfig, zoo_config
from repro.perf import PlatformSpec
from repro.planner import (PlanBudget, PlannerCostModel, plan_representation,
                           uniform_plan)
from repro.serving import (BatchingPolicy, PoissonLoadGen, ServingPerfModel,
                           freeze)

FULL_CONFIG = dict(
    mode="full", seed=0,
    # planted planner workload: the floor sits between the sensitive
    # table's fp16 error (~1e-3) and its bf16/int8 errors (~8e-3/1.2e-2)
    sensitive_scale=50.0, tt_ranks=(2, 2), budget_frac=0.25,
    quality_floor=2e-3, ne_floor=2e-3, eval_batch=256,
    uniform_kinds=("full", "fp16", "bf16", "int8"),
    # tenancy: per-node HBM = hbm_scale x the largest tenant's frozen
    # artifact, so any tenant fits solo but the shared co-residency
    # spills onto the 100x-slower DRAM link
    tenant_sizes=("small", "medium", "large"),
    tenant_shares=(0.6, 0.3, 0.1), tenant_slo_ms=(4.0, 8.0, 30.0),
    tenant_max_batch=(8, 8, 16), tenant_max_wait_ms=(1.0, 2.0, 5.0),
    hbm_scale=1.05, hbm_bw=900e9, dram_link_bw=9e9, overhead_s=1e-3,
    total_qps=2000.0, trace_s=0.25, num_replicas=6)
QUICK_CONFIG = dict(FULL_CONFIG, mode="quick", eval_batch=128,
                    trace_s=0.1)

ZOO_SEEDS = {"small": 0, "medium": 1, "large": 2}


# ----------------------------------------------------------------------
# gate 1: mixed representation vs uniform baselines
# ----------------------------------------------------------------------
def planted_config():
    """Six tables spanning the planner's whole search space: one
    quality-sensitive, two TT-structured, three ordinary."""
    tables = (
        EmbeddingTableConfig("user_profile", 256, 16, avg_pooling=2.0),
        EmbeddingTableConfig("page_ctx", 512, 16, avg_pooling=4.0),
        EmbeddingTableConfig("history_a", 1024, 16, avg_pooling=8.0),
        EmbeddingTableConfig("history_b", 1024, 16, avg_pooling=8.0),
        EmbeddingTableConfig("misc_0", 384, 16, avg_pooling=3.0),
        EmbeddingTableConfig("misc_1", 384, 16, avg_pooling=3.0),
    )
    return DLRMConfig(dense_dim=8, bottom_mlp=(16, 16), tables=tables,
                      top_mlp=(16,))


def build_planted_model(config):
    """A DLRM whose weights make the representation choice *matter*."""
    cfg = planted_config()
    model = DLRM(cfg, seed=config["seed"])
    sensitive = model.embeddings.table("user_profile")
    sensitive.weight[...] = sensitive.weight * config["sensitive_scale"]
    for name in ("history_a", "history_b"):
        table = model.embeddings.table(name)
        tt = TTEmbeddingTable.from_weight(name, table.weight,
                                          ranks=config["tt_ranks"])
        table.weight[...] = tt.materialize()
    return cfg, model


def measure_planner(config):
    """Plan the planted model under budget + floors; score every uniform
    baseline against the same quality floor."""
    cfg, model = build_planted_model(config)
    cost = PlannerCostModel(tt_rank_options=(config["tt_ranks"],))
    full_bytes = sum(t.num_parameters * 4 for t in cfg.tables)
    floor = config["quality_floor"]
    budget = PlanBudget(hot_bytes=full_bytes * config["budget_frac"],
                        quality_floor=floor, ne_floor=config["ne_floor"])
    eval_batch = SyntheticCTRDataset(
        cfg.tables, dense_dim=cfg.dense_dim,
        seed=config["seed"] + 1).batch(config["eval_batch"], 0)
    mixed = plan_representation(model, budget, cost=cost,
                                eval_batch=eval_batch)
    mixed.validate()

    uniforms = {}
    for kind in config["uniform_kinds"]:
        plan = uniform_plan(model, kind, cost=cost)
        uniforms[kind] = {
            "hot_bytes": plan.hot_bytes(),
            "max_error": plan.max_error(),
            "feasible": plan.max_error() <= floor,
        }
    feasible = {k: v for k, v in uniforms.items() if v["feasible"]}
    beats_all = all(mixed.hot_bytes() < v["hot_bytes"]
                    for v in feasible.values())
    servable = freeze(model, plan=mixed)
    return {
        "full_bytes": full_bytes,
        "budget_bytes": budget.hot_bytes,
        "mixed": mixed,
        "servable_bytes": servable.embedding_storage_bytes(),
        "uniforms": uniforms,
        "feasible_uniforms": sorted(feasible),
        "mixed_beats_feasible_uniforms": beats_all and len(feasible) >= 2,
        "some_uniform_infeasible": len(feasible) < len(uniforms),
        "tt_selected": "tt" in mixed.counts_by_kind(),
        "ne_gap_within_floor": (mixed.measured_ne_gap is not None
                                and mixed.measured_ne_gap
                                <= config["ne_floor"]),
    }


# ----------------------------------------------------------------------
# gate 2: planner-partitioned vs naive shared tenancy
# ----------------------------------------------------------------------
def build_tenancy(config):
    """Three zoo tenants, their datasets, and the scaled-down platform
    whose HBM fits any one frozen artifact but not all of them."""
    sizes = config["tenant_sizes"]
    configs = {s: zoo_config(s, seed=ZOO_SEEDS[s]) for s in sizes}
    models = {s: freeze(DLRM(configs[s], seed=ZOO_SEEDS[s])) for s in sizes}
    biggest = max(m.embedding_storage_bytes() for m in models.values())
    platform = PlatformSpec(
        name="bench-planner-mini",
        hbm_per_node_bytes=biggest * config["hbm_scale"],
        dram_per_node_bytes=1e9,
        hbm_bw_per_node=config["hbm_bw"],
        dram_link_bw_per_node=config["dram_link_bw"])
    perf = ServingPerfModel(platform=platform,
                            overhead_s=config["overhead_s"])
    tenants = [
        TenantSpec(
            name=s, model=models[s],
            slo_s=config["tenant_slo_ms"][i] * 1e-3,
            traffic_share=config["tenant_shares"][i],
            policy=BatchingPolicy(
                max_batch_size=config["tenant_max_batch"][i],
                max_wait_s=config["tenant_max_wait_ms"][i] * 1e-3))
        for i, s in enumerate(sizes)]
    datasets = {s: SyntheticCTRDataset(configs[s].tables,
                                       dense_dim=configs[s].dense_dim,
                                       seed=ZOO_SEEDS[s])
                for s in sizes}
    return tenants, datasets, perf


def tenancy_trace(config, datasets):
    """One interleaved Poisson trace across all tenants, request ids
    disambiguated per tenant."""
    requests, offered_qps = [], {}
    for j, size in enumerate(config["tenant_sizes"]):
        qps = config["total_qps"] * config["tenant_shares"][j]
        offered_qps[size] = qps
        gen = PoissonLoadGen(qps=qps,
                             num_requests=int(qps * config["trace_s"]),
                             seed=config["seed"] + j)
        requests += [replace(r, request_id=j * 1_000_000 + r.request_id,
                             tenant=size)
                     for r in gen.requests(datasets[size])]
    requests.sort(key=lambda r: (r.arrival_s, r.request_id))
    return requests, offered_qps


def measure_tenancy(config):
    """The same trace through both deployment modes."""
    tenants, datasets, perf = build_tenancy(config)
    requests, offered_qps = tenancy_trace(config, datasets)
    out = {"num_requests": len(requests), "offered_qps": offered_qps,
           "hbm_per_node_bytes": perf.platform.hbm_per_node_bytes,
           "combined_model_bytes": sum(
               t.model.embedding_storage_bytes() for t in tenants)}
    for mode in ("partitioned", "shared"):
        fleet = MultiTenantFleet(tenants,
                                 num_replicas=config["num_replicas"],
                                 mode=mode, perf=perf)
        out[mode] = {"partition": dict(fleet.partition),
                     "report": fleet.serve(requests,
                                           offered_qps=offered_qps)}
    part = out["partitioned"]["report"]
    shared = out["shared"]["report"]
    out["partitioned_holds_all_slos"] = part.all_slos_held
    out["shared_misses_a_slo"] = len(shared.violations()) >= 1
    return out


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def measure(config):
    return {"planner": measure_planner(config),
            "tenancy": measure_tenancy(config)}


def tenancy_dict(mode_result):
    report = mode_result["report"]
    return {
        "partition": mode_result["partition"],
        "all_slos_held": report.all_slos_held,
        "violations": report.violations(),
        "tenants": {
            name: {"replicas": s.replicas, "slo_s": s.slo_s,
                   "slo_held": s.slo_held,
                   "p99_s": s.report.p99_s,
                   "goodput_qps": s.report.goodput_qps,
                   "shed_fraction": s.report.shed_fraction}
            for name, s in report.per_tenant.items()},
    }


def as_json(config, results):
    planner, tenancy = results["planner"], results["tenancy"]
    return {
        "benchmark": "planner",
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in config.items()},
        "planner": {
            "full_bytes": planner["full_bytes"],
            "budget_bytes": planner["budget_bytes"],
            "mixed": planner["mixed"].as_dict(),
            "servable_bytes": planner["servable_bytes"],
            "uniforms": planner["uniforms"],
            "feasible_uniforms": planner["feasible_uniforms"],
        },
        "tenancy": {
            "num_requests": tenancy["num_requests"],
            "offered_qps": tenancy["offered_qps"],
            "hbm_per_node_bytes": tenancy["hbm_per_node_bytes"],
            "combined_model_bytes": tenancy["combined_model_bytes"],
            "partitioned": tenancy_dict(tenancy["partitioned"]),
            "shared": tenancy_dict(tenancy["shared"]),
        },
        "mixed_beats_feasible_uniforms":
            planner["mixed_beats_feasible_uniforms"],
        "some_uniform_infeasible": planner["some_uniform_infeasible"],
        "tt_selected": planner["tt_selected"],
        "ne_gap_within_floor": planner["ne_gap_within_floor"],
        "partitioned_holds_all_slos": tenancy["partitioned_holds_all_slos"],
        "shared_misses_a_slo": tenancy["shared_misses_a_slo"],
    }


PLAN_HEADER = ["table", "kind", "hot KiB", "error"]
UNIFORM_HEADER = ["plan", "hot KiB", "max error", "floor ok"]
TENANCY_HEADER = ["mode", "tenant", "replicas", "SLO ms", "p99 ms", "held"]


def plan_rows(results):
    mixed = results["planner"]["mixed"]
    return [[name, a.kind, f"{a.hot_bytes / 1024:.1f}", f"{a.error:.2g}"]
            for name, a in sorted(mixed.assignments.items())]


def uniform_rows(results):
    planner = results["planner"]
    rows = [["mixed", f"{planner['mixed'].hot_bytes() / 1024:.1f}",
             f"{planner['mixed'].max_error():.2g}", "yes"]]
    for kind, u in planner["uniforms"].items():
        rows.append([kind, f"{u['hot_bytes'] / 1024:.1f}",
                     f"{u['max_error']:.2g}",
                     "yes" if u["feasible"] else "NO"])
    return rows


def tenancy_rows(results):
    rows = []
    for mode in ("partitioned", "shared"):
        report = results["tenancy"][mode]["report"]
        for name, s in report.per_tenant.items():
            rows.append([mode, name, str(s.replicas),
                         f"{s.slo_s * 1e3:.1f}",
                         f"{s.report.p99_s * 1e3:.2f}",
                         "yes" if s.slo_held else "NO"])
    return rows


def _print_table(header, rows):
    widths = [max(len(str(h)), *(len(str(r[c])) for r in rows))
              for c, h in enumerate(header)]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_planner.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    config = dict(QUICK_CONFIG if args.quick else FULL_CONFIG)
    results = measure(config)
    doc = as_json(config, results)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    mixed = results["planner"]["mixed"]
    print(f"mixed plan under {config['budget_frac']:.0%} budget, "
          f"floor {config['quality_floor']:g}:")
    _print_table(PLAN_HEADER, plan_rows(results))
    print(f"\nmeasured NE gap: {mixed.measured_ne_gap:.2e} "
          f"(floor {config['ne_floor']:g})")
    print("\nmixed vs uniform baselines at the same floor:")
    _print_table(UNIFORM_HEADER, uniform_rows(results))
    print("\ntenant isolation (same trace, both deployment modes):")
    _print_table(TENANCY_HEADER, tenancy_rows(results))
    print(f"wrote {args.out}")

    failures = []
    if not doc["mixed_beats_feasible_uniforms"]:
        failures.append("mixed plan did not beat every floor-feasible "
                        "uniform baseline on hot memory")
    if not doc["some_uniform_infeasible"]:
        failures.append("no uniform baseline breached the quality floor "
                        "— the planted workload lost its tension")
    if not doc["tt_selected"]:
        failures.append("planner never chose TT for the TT-structured "
                        "tables")
    if not doc["ne_gap_within_floor"]:
        failures.append("planned export's measured NE gap exceeded the "
                        "floor")
    if not doc["partitioned_holds_all_slos"]:
        failures.append("planner-partitioned fleet missed a tenant SLO")
    if not doc["shared_misses_a_slo"]:
        failures.append("naive shared fleet held every SLO — the "
                        "isolation gate has no contrast")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def test_mixed_beats_uniform_baselines(benchmark, report):
    """Mixed plan: fewer hot bytes than every floor-feasible uniform."""
    config = dict(QUICK_CONFIG)
    results = benchmark.pedantic(lambda: {"planner": measure_planner(config)},
                                 rounds=1, iterations=1)
    report("planner: mixed vs uniform at equal quality floor",
           UNIFORM_HEADER, uniform_rows(results))
    planner = results["planner"]
    assert planner["mixed_beats_feasible_uniforms"]
    assert planner["some_uniform_infeasible"]
    assert planner["tt_selected"]
    assert planner["ne_gap_within_floor"]
    # the frozen artifact's storage is what the plan promised
    assert planner["servable_bytes"] == planner["mixed"].total_bytes()


def test_partitioned_isolates_where_shared_misses(benchmark, report):
    """Partitioned tenancy holds every SLO; naive shared misses >= 1."""
    config = dict(QUICK_CONFIG)
    results = benchmark.pedantic(lambda: {"tenancy": measure_tenancy(config)},
                                 rounds=1, iterations=1)
    report("planner: tenant isolation, partitioned vs shared",
           TENANCY_HEADER, tenancy_rows(results))
    tenancy = results["tenancy"]
    assert tenancy["partitioned_holds_all_slos"]
    assert tenancy["shared_misses_a_slo"]
    # no tenant silently starved: every offered request is accounted for
    for mode in ("partitioned", "shared"):
        rep = tenancy[mode]["report"]
        served = sum(s.report.num_completed + s.report.num_shed
                     for s in rep.per_tenant.values())
        assert served == tenancy["num_requests"]


if __name__ == "__main__":
    sys.exit(main())

"""Shared segment-reduce kernels for pooled embedding operators.

Every pooled lookup in this repository reduces a jagged batch — ``N``
gathered rows split into ``B`` bags by an ``offsets`` vector — into one
vector per bag. The seed implementation used ``np.add.at``, numpy's
generic indexed scatter-add, which processes one element per interpreter-
level iteration and is by far the slowest way to express this reduction.
These kernels express the same reduction as ``np.add.reduceat`` over
contiguous segments, which runs at memcpy-like speed, and are shared by
:class:`repro.embedding.EmbeddingTable`, the fused arena operator,
tensor-train tables, batch dedup and the cached/mixed-precision tables.

Determinism and parity
----------------------

``np.add.reduceat`` reduces each segment with numpy's fixed pairwise
summation order, a pure function of the segment's contents and length.
Two consequences the tests rely on:

* **split-invariance** — reducing table ``t``'s segments inside a
  concatenated multi-table array is bitwise identical to reducing them in
  ``t``'s own array (the segment boundaries are the same, the surrounding
  data is irrelevant), which is what makes the fused arena path bitwise
  equal to the per-table path;
* **determinism** — results are independent of how a global batch was
  built or split, because the reduction order is a function of the jagged
  layout only.

``np.add.reduceat`` has one sharp edge: for a *empty* segment (equal
adjacent offsets ``i == j``) it returns ``a[i]`` instead of an empty sum,
and a trailing empty segment's start index can equal ``len(a)``, which is
out of range. :func:`segment_sum` handles both explicitly by reducing
only the non-empty segments (their starts are always in range) and
leaving empty bags at zero.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "segment_sum",
    "segment_sum_gather",
    "segment_mean",
    "expand_bag_ids",
    "rebase_jagged",
    "merge_sorted_coo",
]

# Tile size (gathered rows) for the fused gather+reduce kernel. One tile
# of 8192 rows at D=16 is a 512 KB scratch buffer — L2-resident on any
# modern CPU, which is the whole point: gathering the full concatenated
# batch into one huge intermediate array spills every tile to DRAM and
# runs ~4x slower (measured in BENCH_fused_kernel.json's trajectory).
# FBGEMM's batched TBE kernel blocks its gathers the same way.
_GATHER_TILE_ROWS = 8192


def expand_bag_ids(lengths: np.ndarray) -> np.ndarray:
    """Per-element bag ids for a jagged batch: ``[0]*L0 + [1]*L1 + ...``."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)


def segment_sum(values: np.ndarray, offsets: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Sum jagged segments: ``out[b] = values[offsets[b]:offsets[b+1]].sum(0)``.

    ``values`` is ``(N, D)`` float32, ``offsets`` is the ``(B+1,)``
    EmbeddingBag offsets vector (monotone, ``offsets[0] == 0``,
    ``offsets[-1] == N``). Empty bags (equal adjacent offsets, including
    trailing ones whose start equals ``N``) yield exact zeros — the
    ``reduceat`` identity-element gap is handled here so no caller has to.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    num_bags = len(offsets) - 1
    if out is None:
        out = np.zeros((num_bags, values.shape[1]), dtype=np.float32)
    else:
        out[:] = 0.0
    if num_bags <= 0 or len(values) == 0:
        return out
    starts = offsets[:-1]
    nonempty = starts < offsets[1:]
    if nonempty.all():
        out[:] = np.add.reduceat(values, starts, axis=0)
    elif nonempty.any():
        # Non-empty starts are strictly below N, so reduceat is in range;
        # each reduced segment ends at the next non-empty start (the empty
        # bags in between contribute no elements by construction).
        out[nonempty] = np.add.reduceat(values, starts[nonempty], axis=0)
    return out


def segment_sum_gather(storage: np.ndarray, indices: np.ndarray,
                       offsets: np.ndarray,
                       tile_rows: int = _GATHER_TILE_ROWS) -> np.ndarray:
    """Fused gather + segment-sum: ``out[b] = storage[indices[ob:ob+1]].sum(0)``.

    The hot path of the arena megatable: one logical kernel that gathers
    ``storage`` rows through ``indices`` and pools them by the jagged
    ``offsets``, *tiled* over runs of whole bags so the gathered rows live
    in an L2-resident scratch buffer instead of a batch-sized intermediate.
    Tiles never split a bag, and reduceat's within-segment order depends
    only on the segment contents, so the result is bitwise identical to
    ``segment_sum(storage[indices], offsets)`` for any tile size.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    num_bags = len(offsets) - 1
    dim = storage.shape[1]
    if num_bags <= 0:
        return np.zeros((0, dim), dtype=np.float32)
    out = np.empty((num_bags, dim), dtype=np.float32)
    scratch = np.empty((tile_rows, dim), dtype=np.float32)
    bag = 0
    while bag < num_bags:
        # widest run of whole bags totalling <= tile_rows elements; a
        # single oversized bag becomes its own tile
        end_bag = int(np.searchsorted(offsets, offsets[bag] + tile_rows,
                                      side="right")) - 1
        if end_bag <= bag:
            end_bag = bag + 1
        e0, e1 = int(offsets[bag]), int(offsets[end_bag])
        n = e1 - e0
        starts = offsets[bag:end_bag] - e0
        if n == 0:
            out[bag:end_bag] = 0.0
        else:
            tile = scratch[:n] if n <= tile_rows else \
                np.empty((n, dim), dtype=np.float32)
            np.take(storage, indices[e0:e1], axis=0, out=tile)
            if bool((starts < np.append(starts[1:], n)).all()):
                np.add.reduceat(tile, starts, axis=0, out=out[bag:end_bag])
            else:  # empty bags inside the tile: identity-element handling
                segment_sum(tile, np.append(starts, n),
                            out=out[bag:end_bag])
        bag = end_bag
    return out


def segment_mean(values: np.ndarray, offsets: np.ndarray,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Mean-pool jagged segments; empty bags yield zeros (divide by 1)."""
    out = segment_sum(values, offsets, out=out)
    lengths = np.diff(np.asarray(offsets, dtype=np.int64))
    out /= np.maximum(lengths, 1).astype(np.float32)[:, None]
    return out


def rebase_jagged(inputs: Sequence[Tuple[np.ndarray, np.ndarray]],
                  bases: Sequence[int]
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-table jagged batches into one arena-global batch.

    ``inputs`` is a list of per-table ``(indices, offsets)`` pairs and
    ``bases[t]`` is table ``t``'s first row in the arena. Returns
    ``(global_indices, global_offsets, nnz_per_table)`` where
    ``global_indices[k] = indices[k] + base_of_its_table`` and
    ``global_offsets`` is the single jagged offsets vector over the
    concatenated bags (all of table 0's bags, then table 1's, ...).
    """
    if len(inputs) != len(bases):
        raise ValueError(
            f"{len(inputs)} jagged inputs but {len(bases)} base offsets")
    counts = np.array([len(idx) for idx, _ in inputs], dtype=np.int64)
    if not len(inputs):
        return (np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64),
                counts)
    gidx = np.concatenate(
        [np.asarray(idx, dtype=np.int64) for idx, _ in inputs])
    gidx += np.repeat(np.asarray(bases, dtype=np.int64), counts)
    parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    shift = 0
    for (idx, offsets), count in zip(inputs, counts):
        parts.append(np.asarray(offsets, dtype=np.int64)[1:] + shift)
        shift += int(count)
    return gidx, np.concatenate(parts), counts


def merge_sorted_coo(rows: np.ndarray, values: np.ndarray,
                     segment_offsets: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Sort a COO gradient by row and sum duplicates into one entry per row.

    The canonical total order is ``(row, value columns)`` — float addition
    is not bitwise-commutative under reordering, so sorting by row alone
    would leave the within-row summation order dependent on input order.
    Lexsorting with the gradient columns as tie-breakers makes the merged
    result a pure function of the (row, grad) multiset — the determinism
    guarantee of paper Section 4.1.2. Because arena-global row ids are
    disjoint across tables, merging a whole dimension group at once yields
    bitwise the same per-table results as merging each table separately.

    ``segment_offsets`` is a sort accelerator, not a semantic knob: when
    the caller knows the COO is partitioned into contiguous runs whose row
    ranges are disjoint and increasing (the arena's table-major group
    gradient, offsets ``[0, nnz_0, nnz_0+nnz_1, ..., nnz]``), the global
    lexsort's output is exactly the concatenation of the per-run lexsorts,
    so each run is sorted independently — same bits, cache-sized sorts
    instead of one DRAM-streaming sort (asserted by the parity tests).
    """
    if len(rows) == 0:
        return rows.astype(np.int64), values.astype(np.float32)
    if segment_offsets is not None:
        parts = [merge_sorted_coo(rows[s:e], values[s:e])
                 for s, e in zip(segment_offsets[:-1], segment_offsets[1:])
                 if e > s]
        return (np.concatenate([r for r, _ in parts]),
                np.concatenate([v for _, v in parts], axis=0))
    keys = tuple(values[:, d] for d in range(values.shape[1] - 1, -1, -1))
    order = np.lexsort(keys + (rows,))
    sorted_rows = rows[order]
    sorted_vals = values[order]
    unique_rows, starts = np.unique(sorted_rows, return_index=True)
    merged = np.add.reduceat(sorted_vals, starts, axis=0)
    return unique_rows.astype(np.int64), merged.astype(np.float32)

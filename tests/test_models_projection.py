"""Tests for heterogeneous-dim DLRMs via per-feature projections."""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRM, DLRMConfig, mini_config
from repro.sharding import ShardingPlan, ShardingScheme, shard_table


def hetero_config(dims=(4, 12, 8), common=8):
    tables = tuple(
        EmbeddingTableConfig(f"t{i}", 32, d, avg_pooling=3.0)
        for i, d in enumerate(dims))
    return DLRMConfig(dense_dim=4, bottom_mlp=(8, common), tables=tables,
                      top_mlp=(8,), project_features=True)


class TestConfig:
    def test_heterogeneous_rejected_without_projection(self):
        tables = (EmbeddingTableConfig("a", 16, 4),
                  EmbeddingTableConfig("b", 16, 8))
        with pytest.raises(ValueError, match="project_features"):
            DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                       top_mlp=(8,))

    def test_heterogeneous_accepted_with_projection(self):
        cfg = hetero_config()
        assert cfg.embedding_dim == 8

    def test_dense_params_include_projections(self):
        cfg = hetero_config(dims=(4, 12, 8))
        model = DLRM(cfg, seed=0)
        proj_params = sum(
            (4 + 1) * 8 if d == 4 else (d + 1) * 8
            for d in (4, 12, 8))
        base = DLRM(DLRMConfig(dense_dim=4, bottom_mlp=(8, 8),
                               tables=tuple(
                                   EmbeddingTableConfig(f"t{i}", 32, 8)
                                   for i in range(3)),
                               top_mlp=(8,)), seed=0)
        extra = sum(p.size for p in model.dense_parameters()) \
            - sum(p.size for p in base.dense_parameters())
        assert extra == proj_params


class TestReferenceModel:
    def test_forward_shape(self):
        cfg = hetero_config()
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        assert model.forward(ds.batch(16)).shape == (16,)

    def test_training_learns(self):
        cfg = hetero_config()
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, noise=0.2,
                                 seed=1)
        opt = nn.Adam(model.dense_parameters(), lr=0.02)
        sparse = SparseSGD(lr=0.1)
        losses = [model.train_step(ds.batch(64, i), opt, sparse)
                  for i in range(50)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_projection_gradients_flow(self):
        cfg = hetero_config()
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        model.loss(ds.batch(8))
        for p in model.dense_parameters():
            p.zero_grad()
        model.backward()
        proj = model.projections["t0"]
        assert proj.weight.grad is not None
        assert np.any(proj.weight.grad != 0)


class TestDistributedProjection:
    @pytest.mark.parametrize("scheme", [ShardingScheme.TABLE_WISE,
                                        ShardingScheme.ROW_WISE,
                                        ShardingScheme.COLUMN_WISE,
                                        ShardingScheme.DATA_PARALLEL])
    def test_matches_reference(self, scheme):
        cfg = hetero_config(dims=(4, 12, 8))
        world = 2
        plan = ShardingPlan(world_size=world)
        for i, t in enumerate(cfg.tables):
            ranks = [i % world] if scheme == ShardingScheme.TABLE_WISE \
                else list(range(world))
            plan.tables[t.name] = shard_table(t, scheme, ranks)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, seed=0)
        batches = ds.batches(8, 3)

        reference = DLRM(cfg, seed=0)
        ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
        sparse = SparseSGD(lr=0.1)
        ref_losses = [reference.train_step(b, ref_opt, sparse)
                      for b in batches]

        trainer = NeoTrainer(
            cfg, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1), seed=0)
        losses = [trainer.train_step(b.split(world)) for b in batches]
        np.testing.assert_allclose(losses, ref_losses, rtol=1e-4,
                                   atol=1e-6)
        for t in cfg.tables:
            np.testing.assert_allclose(
                trainer.gather_table(t.name),
                reference.embeddings.table(t.name).weight,
                rtol=1e-4, atol=1e-6)
        # projection replicas stay in sync (they ride the AllReduce)
        assert trainer.replicas_in_sync()


class TestHeterogeneousMini:
    def test_mini_config_heterogeneous(self):
        cfg = mini_config("A3", scale=64, num_tables=6,
                          heterogeneous_dims=True, seed=1)
        dims = {t.embedding_dim for t in cfg.tables}
        assert len(dims) > 1
        assert cfg.project_features
        # it builds and runs
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=cfg.dense_dim)
        assert model.forward(ds.batch(4)).shape == (4,)

"""The DLRM model: bottom MLP + embeddings + interaction + top MLP.

Architecture follows the reference DLRM [39] used throughout the paper:
dense features go through a bottom MLP to the embedding dimension, sparse
features are pooled through embedding tables, all feature vectors interact
via pairwise dot products, and a top MLP produces the CTR logit.

This class is the *single-process reference implementation*; the
distributed trainer in :mod:`repro.core.trainer` must produce numerically
equivalent results (tested in ``tests/test_integration_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..embedding import (EmbeddingTableConfig, FusedEmbeddingCollection,
                         SparseOptimizer)
from ..data.datagen import MiniBatch

__all__ = ["DLRMConfig", "DLRM"]


@dataclass(frozen=True)
class DLRMConfig:
    """Architecture of one DLRM.

    The dot-product interaction needs every feature at a common width.
    Two ways to satisfy it:

    * homogeneous tables — every ``embedding_dim`` equals the bottom
      MLP's output width (``project_features=False``, the reference DLRM
      arrangement); or
    * **per-feature projections** (``project_features=True``) — tables
      may have arbitrary dims (the production reality of Table 3, where
      dims span 4-960) and a learned linear projection maps each pooled
      embedding to the common width before interaction.
    """

    dense_dim: int
    bottom_mlp: Tuple[int, ...]        # hidden sizes, ending at emb dim
    tables: Tuple[EmbeddingTableConfig, ...]
    top_mlp: Tuple[int, ...]           # hidden sizes, final layer appended
    project_features: bool = False
    interaction: str = "dot"           # "dot" (pairwise) or "cat" (concat)

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("DLRM needs at least one embedding table")
        if not self.bottom_mlp:
            raise ValueError("bottom_mlp must have at least one layer size")
        if self.interaction not in ("dot", "cat"):
            raise ValueError(
                f"interaction must be 'dot' or 'cat', got "
                f"{self.interaction!r}")
        if not self.project_features:
            emb_dim = self.bottom_mlp[-1]
            for t in self.tables:
                if t.embedding_dim != emb_dim:
                    raise ValueError(
                        f"table {t.name} dim {t.embedding_dim} != bottom "
                        f"MLP output {emb_dim} (dot interaction requires "
                        f"equality; set project_features=True for "
                        f"heterogeneous dims)")

    @property
    def embedding_dim(self) -> int:
        return self.bottom_mlp[-1]

    @property
    def num_sparse_features(self) -> int:
        return len(self.tables)

    def make_interaction(self):
        """Instantiate the configured interaction layer."""
        if self.interaction == "cat":
            return nn.CatInteraction()
        return nn.DotInteraction()

    @property
    def interaction_dim(self) -> int:
        f = self.num_sparse_features + 1  # + dense feature
        if self.interaction == "cat":
            return f * self.embedding_dim
        return self.embedding_dim + f * (f - 1) // 2

    def num_embedding_parameters(self) -> int:
        return sum(t.num_parameters for t in self.tables)

    def num_dense_parameters(self) -> int:
        total = 0
        prev = self.dense_dim
        for width in self.bottom_mlp:
            total += prev * width + width
            prev = width
        prev = self.interaction_dim
        for width in self.top_mlp:
            total += prev * width + width
            prev = width
        total += prev * 1 + 1  # final logit layer
        return total

    def num_parameters(self) -> int:
        return self.num_embedding_parameters() + self.num_dense_parameters()

    def mlp_flops_per_sample(self) -> int:
        """Forward-pass FLOPs (2 per MAC) of both MLPs for one sample."""
        total = 0
        prev = self.dense_dim
        for width in self.bottom_mlp:
            total += 2 * prev * width
            prev = width
        prev = self.interaction_dim
        for width in self.top_mlp:
            total += 2 * prev * width
            prev = width
        total += 2 * prev
        return total


class DLRM:
    """Reference single-process DLRM with explicit forward/backward."""

    def __init__(self, config: DLRMConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.bottom = nn.MLP((config.dense_dim,) + config.bottom_mlp,
                             rng=rng, final_activation="relu", name="bottom")
        self.embeddings = FusedEmbeddingCollection.from_configs(
            config.tables, rng=rng)
        self.projections: Dict[str, nn.Linear] = {}
        if config.project_features:
            for t in config.tables:
                self.projections[t.name] = nn.Linear(
                    t.embedding_dim, config.embedding_dim, rng=rng,
                    name=f"proj.{t.name}")
        self.interaction = config.make_interaction()
        self.top = nn.MLP((config.interaction_dim,) + config.top_mlp + (1,),
                          rng=rng, name="top")
        self.loss_fn = nn.BCEWithLogitsLoss()
        self._saved_pooled: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------
    def dense_parameters(self) -> List[nn.Parameter]:
        params = self.bottom.parameters()
        for t in self.config.tables:
            if t.name in self.projections:
                params.extend(self.projections[t.name].parameters())
        return params + self.top.parameters()

    def _project(self, name: str, pooled: np.ndarray) -> np.ndarray:
        if name in self.projections:
            return self.projections[name].forward(pooled)
        return pooled

    def _project_backward(self, name: str, dy: np.ndarray) -> np.ndarray:
        if name in self.projections:
            return self.projections[name].backward(dy)
        return dy

    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Returns logits of shape (B,)."""
        dense_out = self.bottom.forward(batch.dense)
        pooled = self.embeddings.forward(batch.sparse)
        features = [dense_out] + [self._project(t.name, pooled[t.name])
                                  for t in self.config.tables]
        interacted = self.interaction.forward_list(features)
        return self.top.forward(interacted)[:, 0]

    def loss(self, batch: MiniBatch) -> float:
        return self.loss_fn.forward(self.forward(batch), batch.labels)

    def backward(self) -> Dict[str, np.ndarray]:
        """Backward from the last :meth:`loss`; returns per-table pooled
        gradients (useful for the distributed trainer's comparisons)."""
        d_logits = self.loss_fn.backward()[:, None]
        d_inter = self.top.backward(d_logits)
        d_features = self.interaction.backward_list(d_inter)
        self.bottom.backward(d_features[0])
        d_pooled = {t.name: self._project_backward(t.name,
                                                   d_features[1 + i])
                    for i, t in enumerate(self.config.tables)}
        return d_pooled

    def train_step(self, batch: MiniBatch, dense_opt: nn.Optimizer,
                   sparse_opt: SparseOptimizer) -> float:
        """One synchronous step; returns the batch loss."""
        loss = self.loss(batch)
        for p in self.dense_parameters():
            p.zero_grad()
        d_pooled = self.backward()
        self.embeddings.backward_and_update(d_pooled, sparse_opt)
        dense_opt.step()
        return loss

    def predict_proba(self, batch: MiniBatch) -> np.ndarray:
        from ..nn import functional as F
        return F.sigmoid(self.forward(batch))

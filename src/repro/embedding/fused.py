"""Fused multi-table embedding lookup (paper Section 4.1.1, FBGEMM-style).

A DLRM can have ~1000s of embedding tables. Launching one lookup kernel per
table wastes launch overhead and bandwidth; the paper fuses all tables of a
device into a single batched kernel and additionally fuses the backward
pass with the sparse optimizer, avoiding materializing the full gradient
(which is ``L`` times larger than the update it produces).

Both fusions are reproduced *for real*, not just contractually: the
default ``fusion="arena"`` mode packs all same-``D`` tables into a single
contiguous weight arena (:class:`repro.embedding.arena.EmbeddingArena`)
so that

* :meth:`FusedEmbeddingCollection.forward` is one fancy-index gather over
  rebased indices plus one ``reduceat`` segment-sum per dimension group —
  ``kernel_launches`` counts true dispatches (1 per call for uniform-D
  models), and ``benchmarks/bench_fused_kernel.py`` measures the
  wall-clock win over the per-table loop;
* :meth:`FusedEmbeddingCollection.backward_and_update` builds one
  group-global COO gradient, merges it with a single lexsort/reduceat and
  applies the exact sparse optimizer — never holding more than one
  group's merged gradient at a time.

``fusion="loop"`` keeps the legacy per-table Python loop (N dispatches per
call, counted as such) as the unfused baseline for benchmarks and parity
tests; both modes are bitwise identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import as_tracer
from .arena import EmbeddingArena
from .optim import SparseOptimizer
from .table import EmbeddingTable, EmbeddingTableConfig, SparseGradient

__all__ = ["FusedEmbeddingCollection"]


class FusedEmbeddingCollection:
    """A set of embedding tables updated and queried as one fused operator.

    ``fusion="arena"`` (default) stores the tables in per-dimension weight
    arenas and runs single-dispatch fused kernels; ``fusion="loop"`` keeps
    per-table dispatches. ``kernel_launches`` counts real dispatches in
    both modes (1 per dimension group vs N tables per call), which is what
    the fused-vs-unfused benchmarks compare.

    Optionally instrumented: pass ``tracer=``/``registry=`` (or call
    :meth:`instrument`) to record ``embedding.fused_*`` spans and
    per-table ``embedding.lookup_rows`` counters. Instrumentation is
    read-only; the numerics are identical with it on or off.
    """

    def __init__(self, tables: Sequence[EmbeddingTable], tracer=None,
                 registry=None, fusion: str = "arena") -> None:
        if not tables:
            raise ValueError("need at least one table")
        if fusion not in ("arena", "loop"):
            raise ValueError(f"fusion must be 'arena' or 'loop': {fusion!r}")
        names = [t.name for t in tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names: {names}")
        self.tables = list(tables)
        self._by_name = {t.name: t for t in tables}
        self.fusion = fusion
        self.arena = EmbeddingArena(self.tables) if fusion == "arena" \
            else None
        self.kernel_launches = 0  # true dispatch count (see class docstring)
        self._pending_grads: Dict[str, SparseGradient] = {}
        self.tracer = as_tracer(tracer)
        self._scope = registry.scope("embedding") \
            if registry is not None else None

    def instrument(self, tracer=None, registry=None) -> None:
        """Attach a tracer and/or metric registry after construction."""
        if tracer is not None:
            self.tracer = as_tracer(tracer)
        if registry is not None:
            self._scope = registry.scope("embedding")

    def _count(self, name: str, table: str, rows: int) -> None:
        if self._scope is not None:
            self._scope.counter(name, table=table).inc(rows)

    def _launches_per_call(self) -> int:
        """Dispatches one fused call costs: groups (arena) or tables."""
        if self.arena is not None:
            return self.arena.num_groups
        return len(self.tables)

    @classmethod
    def from_configs(cls, configs: Sequence[EmbeddingTableConfig],
                     rng: Optional[np.random.Generator] = None,
                     fusion: str = "arena") -> "FusedEmbeddingCollection":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls([EmbeddingTable(c, rng=rng) for c in configs],
                   fusion=fusion)

    @property
    def names(self) -> List[str]:
        return [t.name for t in self.tables]

    def table(self, name: str) -> EmbeddingTable:
        return self._by_name[name]

    def num_parameters(self) -> int:
        return sum(t.num_parameters() for t in self.tables)

    def forward(self, batch: Dict[str, Tuple[np.ndarray, np.ndarray]]
                ) -> Dict[str, np.ndarray]:
        """Pooled lookup for every table; one fused call.

        ``batch`` maps table name to ``(indices, offsets)``. Tables not
        present in the batch are an error — a DLRM feeds every feature every
        iteration.
        """
        missing = set(self.names) - set(batch)
        if missing:
            raise KeyError(f"batch missing inputs for tables {sorted(missing)}")
        self.kernel_launches += self._launches_per_call()
        with self.tracer.span("embedding.fused_fwd", cat="embedding",
                              tables=len(self.tables), mode=self.fusion):
            if self.arena is not None:
                out = self.arena.forward(batch)
            else:
                out = {}
                for t in self.tables:
                    indices, offsets = batch[t.name]
                    out[t.name] = t.forward(indices, offsets)
        if self._scope is not None:
            for t in self.tables:
                self._count("lookup_rows", t.name,
                            int(len(batch[t.name][0])))
        return out

    def backward(self, d_pooled: Dict[str, np.ndarray]
                 ) -> Dict[str, SparseGradient]:
        """Backward to per-table sparse gradients (optimizer not fused)."""
        self.kernel_launches += self._launches_per_call()
        with self.tracer.span("embedding.fused_bwd", cat="embedding",
                              tables=len(self.tables), mode=self.fusion):
            if self.arena is not None:
                grads = self.arena.backward(d_pooled)
            else:
                grads = {t.name: t.backward(d_pooled[t.name])
                         for t in self.tables}
        self._pending_grads = grads
        return grads

    def backward_and_update(self, d_pooled: Dict[str, np.ndarray],
                            optimizer: SparseOptimizer) -> None:
        """Fused backward + exact sparse optimizer (Section 4.1.1).

        Never materializes gradients for more than one dimension group
        (arena mode) or one table (loop mode) at a time — the memory
        saving the paper attributes to this fusion.
        """
        self.kernel_launches += self._launches_per_call()
        with self.tracer.span("embedding.fused_bwd_update", cat="embedding",
                              tables=len(self.tables), mode=self.fusion):
            if self.arena is not None:
                updated = self.arena.backward_and_update(d_pooled, optimizer)
                if self._scope is not None:
                    for name, rows in updated.items():
                        self._count("update_rows", name, rows)
            else:
                for t in self.tables:
                    grad = t.backward(d_pooled[t.name])
                    optimizer.step(t, grad)
                    self._count("update_rows", t.name, int(len(grad.rows)))

    def apply_optimizer(self, optimizer: SparseOptimizer) -> None:
        """Apply the optimizer to gradients captured by :meth:`backward`."""
        if not self._pending_grads:
            raise RuntimeError("no pending gradients; call backward first")
        for t in self.tables:
            optimizer.step(t, self._pending_grads[t.name])
        self._pending_grads = {}

    def memory_bytes(self, precision: Optional[str] = None) -> int:
        return sum(t.config.memory_bytes(precision) for t in self.tables)

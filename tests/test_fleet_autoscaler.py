"""Autoscaler tests: the decision rule, the windowed day loop, billing.

The decision rule is pure bookkeeping, so it gets exact unit tests
(hysteresis band, cooldown, clamps). The day loop is tested on a
deliberately slow tiny fleet (~20 qps per replica) so a handful of
requests genuinely overloads it: scale-ups must fire under overload,
scale-downs on idle, warm-up must delay activation but not billing, and
the replica-seconds bill must equal the per-window sum exactly. The
capstone is the economic claim the bench gates at scale: on a diurnal
day, elasticity costs fewer replica-hours than peak provisioning.
"""

import pytest

from repro.fleet import (Autoscaler, AutoscalerConfig, DayCurve,
                         FleetTraffic, RouterPolicy, ServingFleet,
                         replica_warmup_s, run_autoscaled_day,
                         run_static_day, smallest_static_fleet)
from repro.serving import BatchingPolicy, FreezeConfig, ServingPerfModel

from .helpers import tiny_system


def slow_fleet(num_replicas=4, overhead_s=0.2, max_batch=4):
    """A fleet whose replicas saturate near ``max_batch/overhead_s`` qps
    (~20 by default) so tiny traces can overload it."""
    sys = tiny_system()
    perfs = [ServingPerfModel(overhead_s=overhead_s)
             for _ in range(num_replicas)]
    fleet = ServingFleet(
        sys.servable,
        policy=BatchingPolicy(max_batch_size=max_batch, max_wait_s=0.05),
        perfs=perfs, router=RouterPolicy(kind="round_robin"))
    return sys, fleet


def flat_trace(dataset, qps, duration_s, seed=0):
    return FleetTraffic(mean_qps=qps, duration_s=duration_s,
                        seed=seed).requests(dataset)


class TestWarmupPricing:
    def test_warmup_is_overhead_plus_artifact_transfer(self):
        sys = tiny_system()
        w = replica_warmup_s(sys.servable, overhead_s=0.05)
        assert w > 0.05
        assert w == pytest.approx(
            0.05 + sys.servable.storage_bytes()
            / ServingPerfModel().platform.dram_link_bw_per_node)

    def test_smaller_artifact_warms_up_faster(self):
        fp32 = tiny_system(freeze_config=FreezeConfig(precision="fp32"))
        int8 = tiny_system(freeze_config=FreezeConfig(precision="int8"))
        assert replica_warmup_s(int8.servable) \
            < replica_warmup_s(fp32.servable)

    def test_validation(self):
        sys = tiny_system()
        with pytest.raises(ValueError):
            replica_warmup_s(sys.servable, overhead_s=-1.0)


class TestAutoscalerConfig:
    def test_validation(self):
        ok = dict(slo_s=0.5, window_s=2.0)
        AutoscalerConfig(**ok)
        with pytest.raises(ValueError):
            AutoscalerConfig(slo_s=0.0, window_s=2.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(slo_s=0.5, window_s=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(**ok, min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(**ok, min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(**ok, up_p99_frac=0.4, down_p99_frac=0.5)
        with pytest.raises(ValueError):
            AutoscalerConfig(**ok, cooldown_s=-1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(**ok, up_shed_frac=-0.1)
        with pytest.raises(ValueError):
            AutoscalerConfig(**ok, max_replicas=4, initial_replicas=5)


class TestDecisionRule:
    CFG = AutoscalerConfig(slo_s=1.0, window_s=2.0, min_replicas=1,
                           max_replicas=4)

    def test_scales_up_past_the_hysteresis_ceiling(self):
        scaler = Autoscaler(self.CFG)
        assert scaler.decide(2.0, 2, p99_s=0.95, shed_fraction=0.0) == 1

    def test_scales_up_on_shedding_even_with_low_p99(self):
        # admission control hides overload from completed-request p99
        scaler = Autoscaler(self.CFG)
        assert scaler.decide(2.0, 2, p99_s=0.1, shed_fraction=0.2) == 1

    def test_scales_down_below_the_floor(self):
        scaler = Autoscaler(self.CFG)
        assert scaler.decide(2.0, 2, p99_s=0.1, shed_fraction=0.0) == -1

    def test_holds_inside_the_hysteresis_band(self):
        scaler = Autoscaler(self.CFG)
        assert scaler.decide(2.0, 2, p99_s=0.6, shed_fraction=0.0) == 0

    def test_never_scales_down_while_shedding(self):
        # tolerate 5% shed before scaling up — but even tolerated
        # shedding must veto the scale-down path
        cfg = AutoscalerConfig(slo_s=1.0, window_s=2.0, max_replicas=4,
                               up_shed_frac=0.05)
        scaler = Autoscaler(cfg)
        assert scaler.decide(2.0, 2, p99_s=0.1, shed_fraction=0.01) == 0

    def test_clamped_at_the_fleet_bounds(self):
        scaler = Autoscaler(self.CFG)
        assert scaler.decide(2.0, 4, p99_s=2.0, shed_fraction=0.5) == 0
        assert scaler.decide(4.0, 1, p99_s=0.0, shed_fraction=0.0) == 0

    def test_cooldown_suppresses_consecutive_actions(self):
        cfg = AutoscalerConfig(slo_s=1.0, window_s=2.0, max_replicas=4,
                               cooldown_s=5.0)
        scaler = Autoscaler(cfg)
        assert scaler.decide(2.0, 1, p99_s=2.0, shed_fraction=0.0) == 1
        assert scaler.decide(4.0, 2, p99_s=2.0, shed_fraction=0.0) == 0
        assert scaler.decide(6.0, 2, p99_s=2.0, shed_fraction=0.0) == 0
        assert scaler.decide(7.0, 2, p99_s=2.0, shed_fraction=0.0) == 1


class TestWindowedDay:
    def test_overload_provisions_up(self):
        sys, fleet = slow_fleet()
        # ~45 qps against 20-qps replicas: one replica drowns
        requests = flat_trace(sys.dataset, qps=45.0, duration_s=10.0)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, min_replicas=1,
                               max_replicas=3, warmup_s=0.0)
        report = run_autoscaled_day(fleet, requests, cfg)
        assert report.num_scale_ups() >= 1
        assert report.peak_replicas > 1
        assert all(e.delta == 1 for e in report.events)
        # scaling helped: the last served window beats the first
        assert report.windows[-1].p99_s < report.windows[0].p99_s

    def test_idle_provisions_down_to_the_floor(self):
        sys, fleet = slow_fleet()
        requests = flat_trace(sys.dataset, qps=5.0, duration_s=10.0)
        # slo generous enough that the ~0.25 s service floor sits below
        # the scale-down threshold (down_p99_frac * slo)
        cfg = AutoscalerConfig(slo_s=1.2, window_s=2.0, min_replicas=1,
                               max_replicas=3, initial_replicas=3,
                               warmup_s=0.0)
        report = run_autoscaled_day(fleet, requests, cfg)
        assert report.num_scale_downs() >= 2
        assert report.windows[-1].billed_replicas == 1
        assert report.trough_replicas == 1

    def test_billing_is_the_exact_window_sum(self):
        sys, fleet = slow_fleet()
        requests = flat_trace(sys.dataset, qps=45.0, duration_s=10.0)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, max_replicas=3,
                               warmup_s=0.0)
        report = run_autoscaled_day(fleet, requests, cfg)
        assert report.replica_seconds == pytest.approx(
            sum(w.billed_replicas * 2.0 for w in report.windows))
        assert report.replica_hours == report.replica_seconds / 3600.0

    def test_warmup_bills_before_activation(self):
        sys, fleet = slow_fleet()
        requests = flat_trace(sys.dataset, qps=45.0, duration_s=12.0)
        # warm-up longer than one window: the new replica is billed
        # from the event boundary but activates only at the first
        # boundary past event + warmup (two windows later here)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, max_replicas=2,
                               warmup_s=3.0)
        report = run_autoscaled_day(fleet, requests, cfg)
        assert report.num_scale_ups() == 1
        event = report.events[0]
        after = [w for w in report.windows if w.start_s >= event.t_s]
        assert after[0].billed_replicas == 2
        assert after[0].active_replicas == 1
        assert after[1].active_replicas == 1
        assert after[2].active_replicas == 2

    def test_day_is_deterministic(self):
        sys, fleet = slow_fleet()
        requests = flat_trace(sys.dataset, qps=45.0, duration_s=10.0)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, max_replicas=3,
                               warmup_s=0.0)
        a = run_autoscaled_day(fleet, requests, cfg)
        b = run_autoscaled_day(fleet, requests, cfg)
        assert a.merged == b.merged
        assert a.windows == b.windows
        assert a.events == b.events

    def test_rejects_config_larger_than_the_fleet(self):
        sys, fleet = slow_fleet(num_replicas=2)
        requests = flat_trace(sys.dataset, qps=5.0, duration_s=2.0)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, max_replicas=3)
        with pytest.raises(ValueError):
            run_autoscaled_day(fleet, requests, cfg)
        with pytest.raises(ValueError):
            run_autoscaled_day(fleet, [], AutoscalerConfig(
                slo_s=0.5, window_s=2.0, max_replicas=2))


class TestStaticBaseline:
    def test_static_day_never_scales(self):
        sys, fleet = slow_fleet()
        requests = flat_trace(sys.dataset, qps=30.0, duration_s=10.0)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, max_replicas=3)
        report = run_static_day(fleet, requests, cfg, num_replicas=2)
        assert report.events == []
        assert report.peak_replicas == report.trough_replicas == 2

    def test_smallest_static_fleet_is_minimal(self):
        sys, fleet = slow_fleet()
        requests = flat_trace(sys.dataset, qps=30.0, duration_s=10.0)
        cfg = AutoscalerConfig(slo_s=0.5, window_s=2.0, max_replicas=4)
        best = smallest_static_fleet(fleet, requests, cfg)
        n = best.peak_replicas
        assert best.slo_held
        if n > 1:
            smaller = run_static_day(fleet, requests, cfg, num_replicas=n - 1)
            assert smaller.merged.p99_s > cfg.slo_s \
                or smaller.merged.slo_attainment < 0.99

    def test_elastic_beats_peak_provisioning_on_a_diurnal_day(self):
        # the bench-gated claim in miniature: same SLO held, fewer
        # replica-seconds than the cheapest static fleet that holds it
        sys, fleet = slow_fleet()
        # a sharp evening peak (~2.8x mean) so peak provisioning is
        # genuinely expensive relative to the overnight trough
        curve = DayCurve(hourly=(0.2, 0.2, 0.2, 0.3, 0.5, 1.0,
                                 2.0, 3.0, 2.6, 1.6, 0.8, 0.4), day_s=40.0)
        requests = FleetTraffic(mean_qps=25.0, duration_s=40.0,
                                curve=curve, seed=1).requests(sys.dataset)
        cfg = AutoscalerConfig(slo_s=1.0, window_s=1.0, min_replicas=1,
                               max_replicas=4, warmup_s=0.0,
                               up_p99_frac=0.4, down_p99_frac=0.3,
                               cooldown_s=2.0)
        elastic = run_autoscaled_day(fleet, requests, cfg)
        static = smallest_static_fleet(fleet, requests, cfg)
        assert elastic.num_scale_ups() >= 1
        assert elastic.num_scale_downs() >= 1
        assert elastic.replica_seconds < static.replica_seconds
        assert elastic.slo_held

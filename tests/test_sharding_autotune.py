"""Tests for the scheme-assignment autotuner."""

import numpy as np
import pytest

from repro.embedding import EmbeddingTableConfig
from repro.sharding import (CostModelParams, PlannerConfig, ShardingScheme,
                            autotune_schemes, legal_schemes)


def cfg(name="t", h=100_000, d=64, pooling=20.0):
    return EmbeddingTableConfig(name, h, d, avg_pooling=pooling)


def planner_config(**kw):
    defaults = dict(world_size=8, ranks_per_node=8,
                    device_memory_bytes=32e9)
    defaults.update(kw)
    return PlannerConfig(**defaults)


class TestLegalSchemes:
    def test_small_table_all_options(self):
        options = legal_schemes(cfg(h=1000), planner_config())
        assert ShardingScheme.TABLE_WISE in options
        assert ShardingScheme.DATA_PARALLEL in options
        assert ShardingScheme.ROW_WISE in options

    def test_huge_table_row_wise_only(self):
        options = legal_schemes(cfg(h=10 ** 9, d=64),
                                planner_config(device_memory_bytes=1e9))
        assert options == [ShardingScheme.ROW_WISE]

    def test_cw_requires_wide_enough_dim(self):
        options = legal_schemes(cfg(d=4), planner_config())
        assert ShardingScheme.COLUMN_WISE not in options

    def test_respects_disables(self):
        options = legal_schemes(
            cfg(h=1000),
            planner_config(allow_data_parallel=False,
                           allow_column_wise=False))
        assert ShardingScheme.DATA_PARALLEL not in options
        assert ShardingScheme.COLUMN_WISE not in options


class TestAutotune:
    def test_never_worse_than_heuristic(self):
        rng = np.random.default_rng(0)
        tables = [cfg(f"t{i}", h=int(rng.lognormal(10, 1)),
                      d=int(rng.choice([16, 64, 256])),
                      pooling=float(rng.integers(1, 40)))
                  for i in range(24)]
        result = autotune_schemes(tables, planner_config(),
                                  CostModelParams(global_batch=8192,
                                                  world_size=8))
        assert result.final_cost <= result.initial_cost + 1e-12
        result.plan.validate()

    def test_improves_a_pathological_start(self):
        """One dominant table: flipping it away from TW must help."""
        tables = [cfg("huge", h=5_000_000, d=128, pooling=40.0)] + \
                 [cfg(f"small{i}", h=2000, d=16, pooling=2.0)
                  for i in range(7)]
        result = autotune_schemes(
            tables,
            planner_config(allow_data_parallel=False,
                           dp_threshold_rows=1),
            CostModelParams(global_batch=8192, world_size=8))
        # the straggler (rank holding 'huge') should be relieved
        assert result.improvement > 0.05
        assert result.schemes["huge"] != ShardingScheme.TABLE_WISE
        assert len(result.flips) >= 1

    def test_schemes_cover_all_tables(self):
        tables = [cfg(f"t{i}") for i in range(6)]
        result = autotune_schemes(tables, planner_config())
        assert set(result.schemes) == {t.name for t in tables}

    def test_deterministic(self):
        tables = [cfg(f"t{i}", h=10_000 * (i + 1)) for i in range(6)]
        a = autotune_schemes(tables, planner_config())
        b = autotune_schemes(tables, planner_config())
        assert a.schemes == b.schemes
        assert a.final_cost == b.final_cost

    def test_invalid_sweeps(self):
        with pytest.raises(ValueError):
            autotune_schemes([cfg()], planner_config(), max_sweeps=0)

    def test_tuned_plan_trains(self):
        """An autotuned plan drives the functional trainer correctly."""
        from repro import nn
        from repro.comms import ClusterTopology
        from repro.core import NeoTrainer
        from repro.data import SyntheticCTRDataset
        from repro.embedding import SparseSGD
        from repro.models import DLRMConfig

        tables = tuple(
            EmbeddingTableConfig(f"t{i}", 64 * (i + 1), 8, avg_pooling=3.0)
            for i in range(3))
        result = autotune_schemes(
            list(tables),
            planner_config(world_size=2, ranks_per_node=2,
                           dp_threshold_rows=64),
            CostModelParams(global_batch=16, world_size=2))
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        trainer = NeoTrainer(
            config, result.plan,
            ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1))
        ds = SyntheticCTRDataset(tables, dense_dim=4)
        loss = trainer.train_step(ds.batch(16).split(2))
        assert np.isfinite(loss)

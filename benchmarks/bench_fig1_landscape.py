"""Fig. 1: the model landscape — DLRMs vs vision/NLP models in training
compute (petaflop/s-days) and model capacity (parameters).

The figure's point: DLRMs dwarf other domains in *capacity* (trillions of
parameters vs billions) while their *compute* is comparable — the
imbalance that motivates the whole co-design. We regenerate both panels
from the zoo plus public reference models.
"""

import pytest

from repro.models import MODEL_NAMES, full_spec

# public reference points (parameters; training petaflop/s-days, public
# estimates) for the non-DLRM side of Fig. 1
REFERENCE_MODELS = {
    "ResNet-50": (25.6e6, 0.1),
    "BERT-Large": (340e6, 2.4),
    "GPT-3": (175e9, 3640.0),
}


def pfs_days(spec, qps=1e6, days=7):
    """Training compute if trained at qps for `days` days."""
    total_flops = spec.mlp_flops_per_sample() * qps * 86400 * days
    return total_flops / (1e15 * 86400)


def landscape():
    rows = [(name, f"{params / 1e9:.2f}B", f"{pf:.1f}")
            for name, (params, pf) in REFERENCE_MODELS.items()]
    for name in MODEL_NAMES:
        spec = full_spec(name)
        rows.append((f"DLRM-{name}",
                     f"{spec.num_parameters / 1e9:.0f}B",
                     f"{pfs_days(spec):.1f}"))
    return rows


def test_fig1_landscape(benchmark, report):
    rows = benchmark(landscape)
    report("Fig 1: model capacity and training compute",
           ["model", "parameters", "petaflop/s-days"], rows)
    # capacity: every production DLRM dwarfs BERT; F1 dwarfs GPT-3 by >50x
    gpt3_params = REFERENCE_MODELS["GPT-3"][0]
    f1 = full_spec("F1").num_parameters
    assert f1 > 50 * gpt3_params
    for name in MODEL_NAMES:
        assert full_spec(name).num_parameters > 340e6  # > BERT-Large
    # compute: DLRM pf/s-days comparable to language models, far below
    # GPT-3's total — capacity is the outlier dimension, not compute
    a3_pf = pfs_days(full_spec("A3"))
    assert a3_pf < REFERENCE_MODELS["GPT-3"][1]
    assert a3_pf > REFERENCE_MODELS["ResNet-50"][1]

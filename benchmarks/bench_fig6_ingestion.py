"""Fig. 6 / Section 4.4: the data-ingestion pipeline.

Three claims to validate:

1. the **combined format** collapses per-iteration H2D transfers from
   ~2T tensors to ~2, with the corresponding latency win (pinned memory
   included);
2. the **frontend network** (2 x 100 Gbps host NICs per node, Table 2)
   comfortably carries the input stream at the achieved training
   throughput — ingestion "is not a bottleneck";
3. the prefetch queue keeps ingestion off the critical path (depth-2
   double buffering, consumed by the pipeline model's hidden HtoD).
"""

import numpy as np
import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.data import (DataIngestionService, SyntheticCTRDataset,
                        host_transfer_time)
from repro.embedding import EmbeddingTableConfig
from repro.models import full_spec
from repro.perf import TrainingSetup, iteration_time


def ingestion_stats(num_tables=200, world=4, global_batch=256):
    tables = [EmbeddingTableConfig(f"t{i}", 1000, 8, avg_pooling=5.0)
              for i in range(num_tables)]
    ds = SyntheticCTRDataset(tables, dense_dim=13, seed=0)
    svc = DataIngestionService(ds, world_size=world,
                               global_batch_size=global_batch,
                               prefetch_depth=2)
    svc.next_batch()
    return svc.stats


def test_combined_format_h2d(benchmark, report):
    stats = benchmark.pedantic(ingestion_stats, rounds=1, iterations=1)
    speedup = stats.h2d_seconds_pageable / stats.h2d_seconds_pinned
    report("Section 4.4: input transfer, separate vs combined format",
           ["layout", "tensors/iter", "modeled H2D"],
           [("separate (2 per table, pageable)",
             stats.separate_tensors_per_iter,
             f"{stats.h2d_seconds_pageable * 1e3:.2f} ms"),
            ("combined (+pinned)",
             stats.combined_tensors_per_iter,
             f"{stats.h2d_seconds_pinned * 1e3:.2f} ms"),
            ("speedup", "", f"{speedup:.1f}x")])
    assert stats.combined_tensors_per_iter == 4
    assert stats.separate_tensors_per_iter == 2 * 200 + 2
    assert speedup > 3.0


def test_frontend_network_not_bottleneck(benchmark, report):
    """Input-stream bandwidth vs Table 2's frontend NICs, for model A2
    at its modeled 128-GPU throughput."""
    def run():
        spec = full_spec("A2")
        topo = PROTOTYPE_TOPOLOGY(16)
        setup = TrainingSetup(spec=spec, topology=topo,
                              global_batch=65536, load_imbalance=1.15)
        iter_s = iteration_time(setup)
        # per-iteration input bytes: ids (8B each) + dense floats
        total_l = sum(t.avg_pooling for t in spec.tables)
        input_bytes = 65536 * (total_l * 8 + spec.dense_dim * 4)
        ingest_bw_needed = input_bytes / iter_s
        frontend_bw_total = topo.frontend_bw * topo.num_nodes
        return ingest_bw_needed, frontend_bw_total

    needed, available = benchmark(run)
    report("Fig 6: frontend-network headroom (A2 @ 128 GPUs)",
           ["quantity", "GB/s"],
           [("ingest bandwidth needed", f"{needed / 1e9:.1f}"),
            ("frontend NICs provisioned", f"{available / 1e9:.1f}"),
            ("headroom", f"{available / needed:.1f}x")])
    assert available > 2 * needed

"""The staleness-vs-quality-vs-goodput curve, and sizing-driven cadences.

The paper motivates online training but never shows the operating curve
an online system actually navigates: refresh faster and the fleet serves
fresher (lower-NE) answers at the cost of more freeze/publish work;
refresh slower and quality decays while serving throughput is untouched
(swaps are free for the request path — that is the hot-swap contract).
:func:`run_cadence_sweep` traces that curve by running the same seeded
co-simulation at several refresh cadences, and :class:`OnlineReport`
reduces it to one row per cadence: mean/max staleness in steps and
virtual seconds, traffic-weighted serving NE and its gap to the fresh
model, goodput/p99/shed from the SLO report, and the conservation
residual (``shed_during_swap``) that must stay zero.

:func:`cadence_from_sizing` closes the loop with the paper's sizing
story: :mod:`repro.perf.online` picks the smallest cluster that meets an
online-training throughput target; the achieved QPS of that cluster sets
the virtual step time, and a freshness budget (seconds of acceptable
staleness) divides into it to give the swap cadence in steps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.loop import TrainingLoop
from ..models.zoo import ModelSpec
from ..perf.online import NodeSizing, min_nodes_for
from ..serving.batcher import BatchingPolicy
from ..serving.server import ServingPerfModel
from .cosim import CoSimResult, CoSimulation, OnlineConfig

__all__ = ["CadencePoint", "OnlineReport", "run_cadence_sweep",
           "cadence_from_sizing"]


def cadence_from_sizing(spec: ModelSpec, target_qps: float,
                        freshness_budget_s: float,
                        global_batch: int = 4096,
                        **sizing_kwargs) -> Tuple[int, float, NodeSizing]:
    """Derive ``(swap_every_steps, train_step_time_s, sizing)`` from a
    :func:`repro.perf.online.min_nodes_for` cluster sizing.

    The smallest cluster meeting ``target_qps`` trains one global batch
    every ``global_batch / achieved_qps`` seconds; a snapshot may go
    ``freshness_budget_s`` stale before it must be republished, which
    fixes the cadence in whole steps (at least 1).
    """
    if freshness_budget_s <= 0:
        raise ValueError("freshness_budget_s must be positive")
    sizing = min_nodes_for(spec, target_qps, **sizing_kwargs)
    if sizing is None:
        raise ValueError(
            f"no cluster size meets {target_qps} qps for {spec.name}")
    step_time_s = global_batch / sizing.achieved_qps
    swap_every = max(1, int(round(freshness_budget_s / step_time_s)))
    return swap_every, step_time_s, sizing


@dataclass(frozen=True)
class CadencePoint:
    """One refresh cadence's row on the staleness curve."""

    swap_every_steps: int        # 0 = never swapped
    num_swaps: int
    staleness_steps_mean: float
    staleness_steps_max: int
    staleness_s_mean: float
    serving_ne: float
    ne_gap: float
    goodput_qps: float
    p99_s: float
    slo_attainment: float
    shed_fraction: float
    shed_during_swap: int

    def row(self) -> List[str]:
        cadence = "never" if self.swap_every_steps == 0 \
            else str(self.swap_every_steps)
        return [cadence, str(self.num_swaps),
                f"{self.staleness_steps_mean:.2f}",
                str(self.staleness_steps_max),
                f"{self.staleness_s_mean * 1e3:.2f}",
                f"{self.serving_ne:.5f}",
                f"{self.ne_gap:+.5f}",
                f"{self.goodput_qps:.0f}",
                f"{self.p99_s * 1e3:.2f}",
                f"{100 * self.slo_attainment:.1f}%",
                f"{100 * self.shed_fraction:.1f}%",
                str(self.shed_during_swap)]


@dataclass
class OnlineReport:
    """The cadence sweep reduced to the curve the benchmark exports."""

    points: List[CadencePoint]
    fresh_ne: float

    ROW_HEADER = ["swap every", "swaps", "stale steps", "max", "stale ms",
                  "serving NE", "NE gap", "goodput qps", "p99 ms",
                  "SLO att.", "shed", "swap-shed"]

    def rows(self) -> List[List[str]]:
        return [p.row() for p in self.points]

    def total_swaps(self) -> int:
        return sum(p.num_swaps for p in self.points)

    def max_shed_during_swap(self) -> int:
        return max(p.shed_during_swap for p in self.points)

    def ne_gap_monotone_in_staleness(self) -> bool:
        """The headline shape: ordering cadences by mean staleness must
        order their NE gaps the same way (stale answers cost quality)."""
        ordered = sorted(self.points,
                         key=lambda p: p.staleness_steps_mean)
        gaps = [p.ne_gap for p in ordered]
        return all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:]))

    def to_json(self) -> dict:
        return {
            "fresh_ne": self.fresh_ne,
            "ne_gap_monotone_in_staleness":
                self.ne_gap_monotone_in_staleness(),
            "total_swaps": self.total_swaps(),
            "max_shed_during_swap": self.max_shed_during_swap(),
            "points": [dict(p.__dict__) for p in self.points],
        }


def point_from_result(result: CoSimResult) -> CadencePoint:
    """Reduce one co-simulation run to its row on the curve."""
    steps = result.staleness_steps()
    seconds = result.staleness_seconds()
    return CadencePoint(
        swap_every_steps=result.config.swap_every_steps,
        num_swaps=result.num_swaps,
        staleness_steps_mean=float(steps.mean()) if len(steps) else 0.0,
        staleness_steps_max=int(steps.max()) if len(steps) else 0,
        staleness_s_mean=float(seconds.mean()) if len(seconds) else 0.0,
        serving_ne=result.serving_ne(),
        ne_gap=result.ne_gap(),
        goodput_qps=result.report.goodput_qps,
        p99_s=result.report.p99_s,
        slo_attainment=result.report.slo_attainment,
        shed_fraction=result.report.shed_fraction,
        shed_during_swap=result.shed_during_swap)


def run_cadence_sweep(loop_factory: Callable[[], TrainingLoop],
                      cadences: List[int],
                      config: OnlineConfig,
                      policy: Optional[BatchingPolicy] = None,
                      perf: Optional[ServingPerfModel] = None,
                      results_out: Optional[list] = None) -> OnlineReport:
    """Run the same seeded co-simulation once per refresh cadence.

    ``loop_factory`` must build a *fresh* loop (fresh trainer, fresh
    ingestion) each call so every cadence trains the identical
    trajectory; ``config.swap_every_steps`` is overridden per point.
    ``results_out``, if given, receives the raw :class:`CoSimResult` per
    cadence for callers that need more than the reduced rows.
    """
    if not cadences:
        raise ValueError("need at least one cadence")
    points = []
    fresh_ne = None
    for cadence in cadences:
        cfg = OnlineConfig(
            num_steps=config.num_steps, swap_every_steps=cadence,
            train_step_time_s=config.train_step_time_s, qps=config.qps,
            slo_s=config.slo_s, seed=config.seed,
            replicas=config.replicas,
            eval_batch_size=config.eval_batch_size,
            num_requests=config.num_requests,
            freeze_config=config.freeze_config)
        sim = CoSimulation(loop_factory(), cfg, policy=policy, perf=perf)
        result = sim.run()
        points.append(point_from_result(result))
        if results_out is not None:
            results_out.append(result)
        if fresh_ne is None:
            fresh_ne = result.fresh_ne
        elif result.fresh_ne != fresh_ne:  # bitwise: same seed, same runs
            raise RuntimeError(
                "loop_factory is not deterministic: fresh NE differs "
                f"across cadences ({fresh_ne} vs {result.fresh_ne})")
    return OnlineReport(points=points, fresh_ne=fresh_ne)


def render_table(header: List[str], rows: List[List[str]]) -> str:
    """Right-aligned fixed-width table (shared by bench and CLI)."""
    widths = [max(len(str(header[c])), *(len(str(r[c])) for r in rows))
              for c in range(len(header))]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def report_to_json_str(report: OnlineReport) -> str:
    return json.dumps(report.to_json(), indent=2) + "\n"

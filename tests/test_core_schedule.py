"""Tests for the discrete-event pipeline schedule executor."""

import numpy as np
import pytest

from repro.core import ComponentTimes, iteration_latency
from repro.core.schedule import (PipelineSchedule, Task,
                                 dlrm_iteration_tasks,
                                 steady_state_iteration_time)


def times(**kw):
    defaults = dict(bottom_mlp_fwd=1.0, embedding_lookup=1.0,
                    alltoall_fwd=1.0, interaction_fwd=0.5, top_mlp_fwd=2.0,
                    alltoall_bwd=1.0, embedding_update=1.0, allreduce=2.0,
                    h2d=0.5)
    defaults.update(kw)
    return ComponentTimes(**defaults)


class TestPipelineSchedule:
    def test_chain_serializes(self):
        s = PipelineSchedule([
            Task("a", 1.0, "compute"),
            Task("b", 2.0, "compute", ("a",)),
            Task("c", 3.0, "compute", ("b",)),
        ])
        assert s.makespan == pytest.approx(6.0)
        assert s.start["b"] == pytest.approx(1.0)

    def test_independent_streams_overlap(self):
        s = PipelineSchedule([
            Task("a", 5.0, "compute"),
            Task("b", 3.0, "comm"),
        ])
        assert s.makespan == pytest.approx(5.0)
        assert s.start["b"] == 0.0

    def test_same_stream_serializes_independent_tasks(self):
        s = PipelineSchedule([
            Task("a", 5.0, "compute"),
            Task("b", 3.0, "compute"),
        ])
        assert s.makespan == pytest.approx(8.0)

    def test_dependency_across_streams(self):
        s = PipelineSchedule([
            Task("a", 2.0, "compute"),
            Task("b", 1.0, "comm", ("a",)),
        ])
        assert s.start["b"] == pytest.approx(2.0)
        assert s.makespan == pytest.approx(3.0)

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            PipelineSchedule([
                Task("a", 1.0, "compute", ("b",)),
                Task("b", 1.0, "compute", ("a",)),
            ])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PipelineSchedule([Task("a", 1.0, "compute", ("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineSchedule([Task("a", 1.0, "x"), Task("a", 1.0, "x")])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("a", -1.0, "compute")

    def test_critical_path_of_chain(self):
        s = PipelineSchedule([
            Task("a", 1.0, "compute"),
            Task("b", 2.0, "compute", ("a",)),
            Task("side", 0.1, "comm"),
        ])
        assert s.critical_path() == ["a", "b"]

    def test_deterministic(self):
        tasks = [Task(f"t{i}", 1.0, "compute") for i in range(5)]
        a = PipelineSchedule(tasks)
        b = PipelineSchedule(tasks)
        assert a.start == b.start

    def test_empty(self):
        assert PipelineSchedule([]).makespan == 0.0

    def test_priority_breaks_ties(self):
        """Higher-priority task wins a simultaneous-start tie."""
        low_first = PipelineSchedule([
            Task("allreduce", 5.0, "comm", priority=0),
            Task("a2a", 1.0, "comm", priority=0),
            Task("needs_a2a", 1.0, "compute", ("a2a",)),
        ])
        prioritized = PipelineSchedule([
            Task("allreduce", 5.0, "comm", priority=0),
            Task("a2a", 1.0, "comm", priority=1),
            Task("needs_a2a", 1.0, "compute", ("a2a",)),
        ])
        # without prioritization the AlltoAll queues behind the AllReduce
        # (a2a runs 5-6, compute 6-7); with it, compute finishes at 2.
        assert low_first.finish["needs_a2a"] == pytest.approx(7.0)
        assert prioritized.finish["needs_a2a"] == pytest.approx(2.0)

    def test_comm_prioritization_shortens_dlrm_iteration(self):
        """The Section 3 'prioritization' claim on the real DLRM DAG: if
        the backward AlltoAll and the AllReduce contend for the NIC,
        prioritizing the critical-path AlltoAll reduces the makespan."""
        t = times(allreduce=3.0, alltoall_bwd=2.0)
        base_tasks = dlrm_iteration_tasks(t)
        # force contention: allreduce becomes ready at the same moment as
        # a2a_bwd by removing its dependence on bot_bwd
        def contended(tasks, a2a_priority):
            out = []
            for task in tasks:
                if task.name == "allreduce":
                    task = Task(task.name, task.duration, task.stream,
                                ("top_bwd",), priority=0)
                if task.name == "a2a_bwd":
                    task = Task(task.name, task.duration, task.stream,
                                task.deps, priority=a2a_priority)
                out.append(task)
            return PipelineSchedule(out)

        plain = contended(base_tasks, a2a_priority=0)
        prioritized = contended(base_tasks, a2a_priority=1)
        assert prioritized.makespan <= plain.makespan


class TestDlrmIterationDag:
    def test_makespan_close_to_eq1(self):
        """The DAG executor and Eq. 1 model the same structure; their
        totals agree closely (the DAG is slightly more precise about
        stream contention, Eq. 1 about backward overlap)."""
        for kw in ({}, {"allreduce": 20.0}, {"bottom_mlp_fwd": 10.0},
                   {"alltoall_fwd": 6.0}):
            t = times(**kw)
            schedule = PipelineSchedule(dlrm_iteration_tasks(t))
            eq1 = iteration_latency(t)
            assert schedule.makespan == pytest.approx(eq1, rel=0.35)

    def test_overlap_beats_serialization(self):
        t = times()
        schedule = PipelineSchedule(dlrm_iteration_tasks(t))
        assert schedule.makespan < t.serialized_total

    def test_allreduce_off_critical_path_when_small(self):
        t = times(allreduce=0.1)
        schedule = PipelineSchedule(dlrm_iteration_tasks(t))
        assert "allreduce" not in schedule.critical_path()

    def test_alltoall_on_critical_path_when_huge(self):
        t = times(alltoall_fwd=50.0)
        schedule = PipelineSchedule(dlrm_iteration_tasks(t))
        assert "a2a_fwd" in schedule.critical_path()


class TestSteadyState:
    def test_steady_state_at_most_one_shot(self):
        """Inter-batch pipelining can only help: the marginal iteration
        cost never exceeds a cold single-iteration makespan."""
        t = times()
        one_shot = PipelineSchedule(dlrm_iteration_tasks(t)).makespan
        steady = steady_state_iteration_time(t, iterations=4)
        assert steady <= one_shot + 1e-9

    def test_h2d_fully_hidden_in_steady_state(self):
        """A large HtoD copy inflates the cold start but not the steady
        state (double buffering, Fig. 12's hidden HtoD)."""
        base = steady_state_iteration_time(times(h2d=0.0), iterations=4)
        heavy = steady_state_iteration_time(times(h2d=3.0), iterations=4)
        assert heavy == pytest.approx(base, rel=0.05)

    def test_compute_bound_steady_state(self):
        """With zero comms, the steady state equals pure compute time."""
        t = times(alltoall_fwd=0.0, alltoall_bwd=0.0, allreduce=0.0,
                  h2d=0.0)
        compute = (t.bottom_mlp_fwd + t.embedding_lookup
                   + t.interaction_fwd + t.top_mlp_fwd + t.top_mlp_bwd
                   + t.interaction_bwd + t.bottom_mlp_bwd
                   + t.embedding_update)
        steady = steady_state_iteration_time(t, iterations=4)
        assert steady == pytest.approx(compute, rel=1e-6)

    def test_needs_two_iterations(self):
        with pytest.raises(ValueError):
            steady_state_iteration_time(times(), iterations=1)

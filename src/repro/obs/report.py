"""Post-run reporting: summary tables and measured-vs-model comparison.

:func:`render_summary` turns a :class:`repro.obs.Trace` (plus optional
:class:`repro.obs.MetricRegistry` and analytical
:class:`repro.core.pipeline.LatencyBreakdown`) into a markdown report.

:func:`compare_to_model` is the bridge the motivation asks for: it maps
the trainer's measured phase spans onto the components of the analytical
Eq. 1 breakdown (Fig. 12) and diffs the per-component *shares*, so the
executable stack and the performance model can be checked against each
other run by run. Shares — not absolute seconds — are compared because
the simulation executes on a host CPU while the model predicts the
modelled accelerator cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["DEFAULT_PHASE_MAP", "ComponentComparison", "compare_to_model",
           "render_summary"]


# trainer phase span -> the analytical breakdown components it measures
# (keys of repro.core.pipeline.LatencyBreakdown.serialized)
DEFAULT_PHASE_MAP: Dict[str, Tuple[str, ...]] = {
    "trainer.bottom_mlp_fwd": ("bottom_mlp_fwd",),
    "trainer.embedding_fwd": ("embedding_lookup", "alltoall_fwd"),
    "trainer.interaction_fwd": ("interaction_fwd",),
    "trainer.top_mlp_fwd": ("top_mlp_fwd",),
    "trainer.dense_bwd": ("top_mlp_bwd", "interaction_bwd",
                          "bottom_mlp_bwd"),
    "trainer.embedding_bwd": ("alltoall_bwd", "embedding_update"),
    "trainer.allreduce": ("allreduce",),
}


@dataclass(frozen=True)
class ComponentComparison:
    """Measured vs modeled attribution for one trainer phase."""

    component: str
    measured_seconds: float
    measured_share: float
    model_seconds: float
    model_share: float

    @property
    def delta_share(self) -> float:
        return self.measured_share - self.model_share


def compare_to_model(trace, model,
                     phase_map: Optional[Dict[str, Tuple[str, ...]]] = None
                     ) -> List[ComponentComparison]:
    """Diff measured phase shares against an analytical breakdown.

    ``model`` is a :class:`repro.core.pipeline.LatencyBreakdown` (or any
    object with a ``serialized`` dict); ``trace`` a
    :class:`repro.obs.Trace` whose trainer phase spans follow the default
    taxonomy. Shares are normalized over the mapped components on both
    sides, so the two columns are directly comparable.
    """
    phase_map = DEFAULT_PHASE_MAP if phase_map is None else phase_map
    agg = trace.aggregate()
    measured = {span: agg[span].total if span in agg else 0.0
                for span in phase_map}
    modeled = {span: sum(model.serialized.get(k, 0.0) for k in keys)
               for span, keys in phase_map.items()}
    m_total = sum(measured.values())
    a_total = sum(modeled.values())
    rows = []
    for span in phase_map:
        rows.append(ComponentComparison(
            component=span,
            measured_seconds=measured[span],
            measured_share=measured[span] / m_total if m_total else 0.0,
            model_seconds=modeled[span],
            model_share=modeled[span] / a_total if a_total else 0.0))
    return rows


def _fmt_time(value: float, logical: bool) -> str:
    if logical:
        return f"{value:.0f} ticks"
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    return f"{value * 1e6:.1f} us"


def render_summary(trace, registry=None, model=None,
                   title: str = "Instrumented run summary") -> str:
    """A markdown report: span aggregates, metrics, model comparison."""
    logical = trace.clock == "logical"
    lines = [f"# {title}", "",
             f"clock: {trace.clock} · spans: {len(trace.closed_events())} "
             f"· traced extent: "
             f"{_fmt_time(trace.total_duration, logical)}", ""]

    agg = trace.aggregate()
    if agg:
        total = sum(a.self_time for a in agg.values()) or 1.0
        lines += ["## Spans", "",
                  "| span | count | total | self | self share |",
                  "|---|---:|---:|---:|---:|"]
        for name in sorted(agg, key=lambda n: -agg[n].self_time):
            a = agg[name]
            lines.append(
                f"| `{name}` | {a.count} | "
                f"{_fmt_time(a.total, logical)} | "
                f"{_fmt_time(a.self_time, logical)} | "
                f"{100.0 * a.self_time / total:.1f}% |")
        lines.append("")

    if registry is not None:
        snap = registry.snapshot()
        if snap:
            lines += ["## Metrics", "", "| metric | value |", "|---|---:|"]
            for key, value in snap.items():
                if isinstance(value, dict):  # histogram summary
                    value = (f"n={value['count']} mean={value['mean']:.4g} "
                             f"max={value['max']:.4g}")
                elif isinstance(value, float):
                    value = f"{value:.6g}"
                lines.append(f"| `{key}` | {value} |")
            lines.append("")

    if model is not None:
        rows = compare_to_model(trace, model)
        lines += ["## Measured vs analytical model (Fig. 12 components)",
                  "",
                  "| phase | measured share | model share | delta |",
                  "|---|---:|---:|---:|"]
        for r in rows:
            lines.append(
                f"| `{r.component}` | {100.0 * r.measured_share:.1f}% | "
                f"{100.0 * r.model_share:.1f}% | "
                f"{100.0 * r.delta_share:+.1f}pp |")
        lines.append("")

    return "\n".join(lines)

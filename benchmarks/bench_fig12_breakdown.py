"""Fig. 12: serialized vs exposed per-operator latency for model A2
(local batch 512 per GPU), 1 to 16 nodes.

Paper observations this bench must reproduce:
* HtoD is completely hidden;
* exposed comms < serialized AlltoAll + AllReduce combined (overlap);
* AlltoAll latency grows with node count and is mostly exposed;
* AllReduce is mostly hidden up to 16 nodes.
"""

import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.models import full_spec
from repro.perf import TrainingSetup, latency_breakdown

NODE_COUNTS = [1, 2, 4, 8, 16]
PER_GPU_BATCH = 512


def breakdowns():
    spec = full_spec("A2")
    out = {}
    for n in NODE_COUNTS:
        topo = PROTOTYPE_TOPOLOGY(n)
        setup = TrainingSetup(spec=spec, topology=topo,
                              global_batch=PER_GPU_BATCH * topo.world_size,
                              load_imbalance=1.15)
        out[n] = latency_breakdown(setup)
    return out


def test_fig12_breakdown(benchmark, report):
    out = benchmark.pedantic(breakdowns, rounds=1, iterations=1)
    rows = []
    for n, b in out.items():
        a2a_ser = b.serialized["alltoall_fwd"] + b.serialized["alltoall_bwd"]
        a2a_exp = b.exposed["alltoall_fwd"] + b.exposed["alltoall_bwd"]
        rows.append((n * 8,
                     f"{b.total * 1e3:.1f}",
                     f"{a2a_ser * 1e3:.1f}", f"{a2a_exp * 1e3:.1f}",
                     f"{b.serialized['allreduce'] * 1e3:.1f}",
                     f"{b.exposed['allreduce'] * 1e3:.1f}",
                     f"{b.serialized['h2d'] * 1e3:.1f}",
                     f"{b.exposed['h2d'] * 1e3:.1f}"))
    report("Fig 12: A2 per-iteration latency breakdown (ms)",
           ["gpus", "total", "a2a ser", "a2a exp", "ar ser", "ar exp",
            "h2d ser", "h2d exp"], rows)

    for n, b in out.items():
        # HtoD completely hidden
        assert b.exposed["h2d"] == 0.0
        # exposed comms strictly less than serialized comms (overlap works)
        ser_comms = (b.serialized["alltoall_fwd"]
                     + b.serialized["alltoall_bwd"]
                     + b.serialized["allreduce"]
                     + b.serialized["input_alltoall"])
        assert b.exposed_comms < ser_comms
    # AlltoAll cost grows with node count and is mostly exposed at 16 nodes
    a2a = {n: out[n].serialized["alltoall_fwd"] for n in NODE_COUNTS}
    assert a2a[16] > a2a[2] > a2a[1] * 0.99
    b16 = out[16]
    assert b16.exposed["alltoall_fwd"] > 0.8 * b16.serialized["alltoall_fwd"]
    # AllReduce mostly hidden up to 16 nodes
    assert b16.exposed["allreduce"] < 0.3 * b16.serialized["allreduce"]

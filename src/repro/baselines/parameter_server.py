"""Asynchronous parameter-server baseline (paper Section 2, Fig. 2).

The previous-generation production system: a disaggregated fleet where

* embedding tables live on parameter servers and are updated **Hogwild!**
  style — gradients are applied without locking or duplicate merging, and
  by the time a gradient arrives the weights have moved (*staleness*);
* dense MLP parameters are replicated per trainer and synchronized with a
  central dense PS via **elastic averaging SGD** (EASGD);
* trainers consume small local batches (~150) independently.

This module reproduces those *semantics* in-process: one logical clock
interleaves trainers round-robin, sparse gradients are queued and applied
``staleness`` ticks late against weights that have since moved, and EASGD
pulls replicas toward the center every ``sync_period`` steps. It exists to
regenerate Fig. 10 (async small-batch vs sync large-batch quality) and the
CPU-baseline row behind Table 4's 3x/40x speedup claims.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..data.datagen import MiniBatch, SyntheticCTRDataset
from ..models.dlrm import DLRM, DLRMConfig
from ..models.zoo import ModelSpec
from ..perf.devices import CPU_SKYLAKE, DeviceSpec
from ..perf.gemm import mlp_time

__all__ = ["AsyncPSTrainer", "ps_throughput_qps"]


@dataclass
class _PendingGradient:
    """A sparse gradient in flight between a trainer and the PS."""

    apply_at: int
    table_grads: Dict[str, Tuple[np.ndarray, np.ndarray]]  # rows, values


class AsyncPSTrainer:
    """Functional simulator of the async PS training system.

    Parameters
    ----------
    config:
        The DLRM architecture (shared with the sync system for fair
        comparisons).
    num_trainers:
        Trainer replicas; one logical tick processes one trainer's batch.
    staleness:
        Ticks between gradient computation and application. Defaults to
        ``num_trainers - 1`` (every other trainer slips in an update).
    easgd_alpha / sync_period:
        Elastic-averaging strength and cadence for the dense parameters.
    """

    def __init__(self, config: DLRMConfig, num_trainers: int = 16,
                 staleness: Optional[int] = None, lr: float = 0.05,
                 easgd_alpha: float = 0.5, sync_period: int = 4,
                 seed: int = 0) -> None:
        if num_trainers <= 0:
            raise ValueError("num_trainers must be positive")
        if sync_period <= 0:
            raise ValueError("sync_period must be positive")
        if not 0.0 < easgd_alpha <= 1.0:
            raise ValueError("easgd_alpha must be in (0, 1]")
        self.config = config
        self.num_trainers = num_trainers
        self.staleness = (num_trainers - 1) if staleness is None \
            else staleness
        if self.staleness < 0:
            raise ValueError("staleness must be non-negative")
        self.lr = lr
        self.easgd_alpha = easgd_alpha
        self.sync_period = sync_period
        # the PS state: embedding tables + the dense "center"
        self._ps_model = DLRM(config, seed=seed)
        self._center = [p.data.copy()
                        for p in self._ps_model.dense_parameters()]
        # per-trainer dense replicas (start at the center)
        self._trainers = [DLRM(config, seed=seed)
                          for _ in range(num_trainers)]
        self._pending: Deque[_PendingGradient] = deque()
        self.clock = 0

    # ------------------------------------------------------------------
    def _apply_due_gradients(self) -> None:
        """Hogwild!: apply queued sparse gradients without merging —
        plain SGD per occurrence against whatever the weights are *now*."""
        while self._pending and self._pending[0].apply_at <= self.clock:
            pending = self._pending.popleft()
            for name, (rows, values) in pending.table_grads.items():
                weight = self._ps_model.embeddings.table(name).weight
                # deliberately unmerged scatter: the racy semantics
                np.subtract.at(weight, rows, self.lr * values)

    def _easgd_sync(self, trainer_idx: int) -> None:
        """Pull a replica and the center toward each other [61]."""
        replica = self._trainers[trainer_idx].dense_parameters()
        for p, center in zip(replica, self._center):
            diff = p.data - center
            p.data = (p.data - self.easgd_alpha * diff).astype(np.float32)
            center += (self.easgd_alpha / self.num_trainers) * diff

    def step(self, batch: MiniBatch) -> float:
        """One tick: the next trainer processes one small batch."""
        trainer_idx = self.clock % self.num_trainers
        self._apply_due_gradients()
        model = self._trainers[trainer_idx]
        # trainers read the *current* PS embeddings (shared storage)
        for t in self.config.tables:
            model.embeddings.table(t.name).weight = \
                self._ps_model.embeddings.table(t.name).weight
        loss = model.loss(batch)
        for p in model.dense_parameters():
            p.zero_grad()
        d_pooled = model.backward()
        grads = model.embeddings.backward(d_pooled)
        self._pending.append(_PendingGradient(
            apply_at=self.clock + self.staleness,
            table_grads={name: (g.rows, g.values)
                         for name, g in grads.items()}))
        # local dense SGD step
        for p in model.dense_parameters():
            if p.grad is not None:
                p.data -= (self.lr * p.grad).astype(np.float32)
        if (self.clock + 1) % self.sync_period == 0:
            self._easgd_sync(trainer_idx)
        self.clock += 1
        return loss

    def train(self, dataset: SyntheticCTRDataset, batch_size: int,
              num_steps: int, start_batch: int = 0) -> List[float]:
        return [self.step(dataset.batch(batch_size, start_batch + i))
                for i in range(num_steps)]

    def snapshot(self) -> DLRM:
        """Current PS state as an evaluable model (center dense params)."""
        self._apply_due_gradients()
        model = DLRM(self.config, seed=0)
        for p, center in zip(model.dense_parameters(), self._center):
            p.data = center.copy()
        for t in self.config.tables:
            model.embeddings.table(t.name).weight = \
                self._ps_model.embeddings.table(t.name).weight.copy()
        return model


def ps_throughput_qps(spec: ModelSpec, num_trainers: int = 16,
                      num_ps: int = 16, batch_size: int = 150,
                      device: DeviceSpec = CPU_SKYLAKE,
                      trainer_nic_bw: float = 12.5e9,
                      system_efficiency: float = 0.45) -> float:
    """Throughput model of the distributed CPU PS system (Table 4's 1x).

    Per-sample time on one trainer is the max of MLP compute on the CPU
    and the PS round trip for pooled embeddings; the fleet scales linearly
    in trainers degraded by ``system_efficiency`` (EASGD sync, stragglers,
    reader stalls — the operational overheads of Section 2).
    """
    if num_trainers <= 0 or num_ps <= 0:
        raise ValueError("fleet sizes must be positive")
    sizes = (spec.dense_dim,) + spec.mlp_layer_sizes
    mlp_s = mlp_time(batch_size, sizes, device) \
        + mlp_time(batch_size, sizes, device, backward=True)
    mlp_per_sample = mlp_s / batch_size
    # pooled vectors fetched + gradient pushed per sample
    sum_d = sum(t.embedding_dim for t in spec.tables)
    wire_per_sample = 2 * sum_d * 4
    nic_per_sample = wire_per_sample / trainer_nic_bw
    # PS-side row traffic, shared across the PS tier
    total_l = sum(t.avg_pooling for t in spec.tables)
    ps_bytes_per_sample = 3 * total_l * spec.avg_embedding_dim * 4
    ps_per_sample = ps_bytes_per_sample / (
        num_ps * device.hbm_achievable_bw / num_trainers) / num_trainers
    per_sample = max(mlp_per_sample, nic_per_sample, ps_per_sample)
    return num_trainers * system_efficiency / per_sample

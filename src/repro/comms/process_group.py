"""Process-group facade: collectives + traffic accounting + modeled time.

This is the reproduction's analogue of the PyTorch ProcessGroup (NCCL)
interface the paper extends (Section 4.5). It binds together

* the exact functional collectives (data really moves between ranks),
* optional wire quantization (:class:`QuantizedCommsConfig`),
* byte accounting per collective type, and
* the alpha-beta latency model, accumulating a modeled communication time
  alongside the real computation.

Accounting is published through a :class:`repro.obs.MetricRegistry`
scope (``comms.calls`` / ``comms.wire_bytes`` / ``comms.modeled_seconds``,
labelled by collective), and every collective runs inside a tracer span
carrying its byte/latency attribution — so a traced run reports, per
collective kind, exactly the traffic the legacy :class:`CommsLog`
accessors aggregate.

Byte-accounting conventions (audited for the sliced-gradient AlltoAll
paths of column-wise sharding):

* Float payloads are counted as ``elements x wire precision`` — the
  quantization codec determines bytes, not the host dtype. An AlltoAll
  whose per-destination slices are uneven (e.g. uneven column splits)
  counts exactly ``sum(slice sizes)``; for a column-wise table that is
  ``sum(shard_cols) * batch`` elements per iteration, however the columns
  were cut.
* Index payloads (the ``direction="index"`` AlltoAll) are counted from
  the arrays' real ``nbytes`` — ids are int64 today, but the accounting
  no longer hard-codes 8 bytes/element, so int32 ids would be billed
  correctly too.
* Self-sends (rank r -> rank r) are included, matching the analytical
  model in :mod:`repro.comms.perf_model` and the paper's Fig. 20
  convention of quoting full AlltoAll volume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..obs.metrics import MetricRegistry, MetricScope
from ..obs.tracer import NULL_TRACER, as_tracer
from . import collectives, perf_model
from .quantization import QuantizedCommsConfig, wire_bytes
from .topology import ClusterTopology

__all__ = ["CommsLog", "SimProcessGroup"]


class CommsLog:
    """Per-collective traffic and modeled time, backed by a metric scope.

    The historical interface (``calls`` / ``wire_bytes`` /
    ``modeled_seconds`` dicts keyed by collective name, ``total_bytes``,
    ``total_seconds``) is preserved as views over registry counters, so
    existing callers and the new observability layer read the same
    numbers by construction.
    """

    def __init__(self, scope: Optional[MetricScope] = None) -> None:
        self._scope = scope if scope is not None \
            else MetricRegistry().scope("comms")

    @property
    def scope(self) -> MetricScope:
        return self._scope

    def record(self, name: str, bytes_on_wire: float,
               seconds: float) -> None:
        self._scope.counter("calls", collective=name).inc(1)
        self._scope.counter("wire_bytes",
                            collective=name).inc(int(bytes_on_wire))
        self._scope.counter("modeled_seconds",
                            collective=name).inc(float(seconds))

    @property
    def calls(self) -> Dict[str, int]:
        return self._scope.by_label("calls", "collective")

    @property
    def wire_bytes(self) -> Dict[str, int]:
        return self._scope.by_label("wire_bytes", "collective")

    @property
    def modeled_seconds(self) -> Dict[str, float]:
        return self._scope.by_label("modeled_seconds", "collective")

    @property
    def total_bytes(self) -> int:
        return sum(self.wire_bytes.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.modeled_seconds.values())

    def reset(self) -> None:
        self._scope.reset()


class SimProcessGroup:
    """All-rank collectives with accounting, for the lock-step trainer."""

    def __init__(self, topology: ClusterTopology,
                 comms_config: Optional[QuantizedCommsConfig] = None,
                 registry: Optional[MetricRegistry] = None,
                 tracer=None) -> None:
        self.topology = topology
        self.comms_config = comms_config or QuantizedCommsConfig()
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = as_tracer(tracer)
        self.log = CommsLog(self.registry.scope("comms"))

    @property
    def world_size(self) -> int:
        return self.topology.world_size

    def instrument(self, tracer=None,
                   registry: Optional[MetricRegistry] = None) -> None:
        """Swap in a tracer and/or registry after construction."""
        if tracer is not None:
            self.tracer = as_tracer(tracer)
        if registry is not None:
            self.registry = registry
            self.log = CommsLog(registry.scope("comms"))

    def _check_world(self, inputs: list, name: str) -> None:
        if len(inputs) != self.world_size:
            raise ValueError(
                f"{name} expects one input per rank "
                f"({self.world_size}), got {len(inputs)}")

    def _record(self, name: str, total_wire: float, seconds: float) -> None:
        self.log.record(name, total_wire, seconds)

    # ------------------------------------------------------------------
    def all_reduce(self, inputs: List[np.ndarray]) -> List[np.ndarray]:
        self._check_world(inputs, "all_reduce")
        precision = self.comms_config.allreduce
        per_gpu = wire_bytes(int(inputs[0].size), precision)
        seconds = perf_model.allreduce_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        with self.tracer.span("comms.all_reduce", cat="comms",
                              wire_bytes=total_wire,
                              modeled_seconds=seconds):
            out = collectives.all_reduce(
                inputs, codec=self.comms_config.allreduce_codec())
        self._record("all_reduce", total_wire, seconds)
        return out

    def all_to_all(self, inputs: List[List[np.ndarray]],
                   direction: str = "forward_alltoall"
                   ) -> List[List[np.ndarray]]:
        self._check_world(inputs, "all_to_all")
        if direction == "forward_alltoall":
            codec = self.comms_config.forward_codec()
            precision = self.comms_config.forward_alltoall
        elif direction == "backward_alltoall":
            codec = self.comms_config.backward_codec()
            precision = self.comms_config.backward_alltoall
        elif direction == "index":
            # index redistribution is integer data: never quantized
            codec = None
            precision = None
        else:
            raise ValueError(f"unknown direction {direction!r}")
        if direction == "index":
            # integer payloads are billed at their true width (ids are
            # int64 today; nbytes keeps this honest if that ever changes)
            total_wire = sum(int(np.asarray(x).nbytes) for row in inputs
                             for x in row)
        else:
            # float payloads are billed at the wire precision, summed
            # over every (src, dst) slice — exact under uneven splits
            total_elems = sum(int(np.asarray(x).size) for row in inputs
                              for x in row)
            total_wire = wire_bytes(total_elems, precision)
        per_gpu = total_wire / max(self.world_size, 1)
        seconds = perf_model.alltoall_time(per_gpu, self.topology)
        name = f"all_to_all/{direction}"
        with self.tracer.span(f"comms.{name}", cat="comms",
                              wire_bytes=total_wire,
                              modeled_seconds=seconds):
            out = collectives.all_to_all(inputs, codec=codec)
        self._record(name, total_wire, seconds)
        return out

    def reduce_scatter(self, inputs: List[List[np.ndarray]]
                       ) -> List[np.ndarray]:
        self._check_world(inputs, "reduce_scatter")
        per_gpu = sum(int(np.asarray(x).size) for x in inputs[0]) * 4
        seconds = perf_model.reduce_scatter_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        with self.tracer.span("comms.reduce_scatter", cat="comms",
                              wire_bytes=total_wire,
                              modeled_seconds=seconds):
            out = collectives.reduce_scatter(inputs)
        self._record("reduce_scatter", total_wire, seconds)
        return out

    def all_gather(self, inputs: List[np.ndarray]) -> List[List[np.ndarray]]:
        self._check_world(inputs, "all_gather")
        per_gpu = int(np.asarray(inputs[0]).size) * 4
        seconds = perf_model.allgather_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        with self.tracer.span("comms.all_gather", cat="comms",
                              wire_bytes=total_wire,
                              modeled_seconds=seconds):
            out = collectives.all_gather(inputs)
        self._record("all_gather", total_wire, seconds)
        return out

    def broadcast(self, inputs: List[np.ndarray],
                  root: int = 0) -> List[np.ndarray]:
        self._check_world(inputs, "broadcast")
        per_gpu = int(np.asarray(inputs[root]).size) * 4
        seconds = perf_model.allgather_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        with self.tracer.span("comms.broadcast", cat="comms",
                              wire_bytes=total_wire,
                              modeled_seconds=seconds):
            out = collectives.broadcast(inputs, root=root)
        self._record("broadcast", total_wire, seconds)
        return out

    def reset_log(self) -> None:
        self.log.reset()

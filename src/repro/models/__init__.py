"""DLRM model assembly and the paper's production model zoo (Table 3)."""

from .dlrm import DLRM, DLRMConfig
from .zoo import (MODEL_NAMES, TABLE3_REFERENCE, ZOO_SIZES, ModelSpec,
                  full_spec, mini_config, zoo_config)

__all__ = [
    "DLRM",
    "DLRMConfig",
    "ModelSpec",
    "full_spec",
    "mini_config",
    "zoo_config",
    "MODEL_NAMES",
    "ZOO_SIZES",
    "TABLE3_REFERENCE",
]

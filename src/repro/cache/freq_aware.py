"""Frequency-aware chunked embedding cache with pipelined prefetch.

The reactive caches in this package (set-associative LRU/LFU, the UVM
page baseline) learn the hot set by missing on it. But DLRM embedding
access is wildly skewed and *measurably* so — the ingestion pipeline sees
every id before the trainer does — so the hot set can be known up front.
This module implements the CacheEmbedding-style design the ROADMAP names
(hpcaitech ``freq_aware_embedding`` / ``chunk_param_mgr``), adapted to
this repo's exact-functional substrate:

* :class:`FreqAwareCache` packs rows into fixed-size **chunks ranked by
  id-frequency statistics**. Unlike UVM pages, chunks are not id-space
  aligned: :meth:`FreqAwareCache.warm` packs the hottest rows densely in
  rank order (hashed production ids scatter hot rows, so alignment is
  exactly what makes page caches thrash). Admission and eviction happen
  at chunk granularity — a victim chunk is the one whose member rows
  have the lowest accumulated frequency score.
* :class:`PrefetchPipeline` overlaps the remaining misses with compute:
  while batch ``k`` runs, the rows batch ``k+1`` needs are staged via
  :meth:`RowCache.prefetch_rows` inside a ``cache.prefetch`` span, and
  the pipeline accounts how much of the staging time hides under the
  compute window (the ``repro.obs`` spans carry the measured overlap;
  the benchmark prices exposed bytes at slow-tier bandwidth).

Both are exact: every read through the cache is bitwise identical to an
uncached :meth:`ArrayBackingStore.read_rows` (hypothesis-fuzzed in
``tests/test_cache_api.py``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs.tracer import as_tracer
from .api import RowCacheBase
from .backing import ArrayBackingStore

__all__ = ["FreqAwareCache", "PrefetchPipeline"]


class FreqAwareCache(RowCacheBase):
    """Chunk-based hot store ranked by id-frequency statistics.

    Parameters
    ----------
    capacity_rows:
        Fast-tier budget in rows; rounded down to whole chunks.
    row_dim:
        Row width ``D``; cached data is float32.
    chunk_rows:
        Rows per chunk — the admission/eviction granularity. Chunks
        amortize transfer setup (the real system moves chunks, not rows)
        while staying far below UVM page granularity.

    Rows are admitted into an *open* chunk as they miss; when it fills,
    the chunk is sealed and the next admission allocates a fresh chunk,
    evicting the lowest-score sealed chunk once capacity is reached. A
    chunk's score is the accumulated observed frequency of its member
    rows, seeded from the warm histogram when :meth:`warm` was used, so
    frequency-ranked hot chunks outlive reactively admitted cold ones.

    Admission is itself frequency-aware: once the cache is full, a
    missing row is only admitted (evicting the coldest chunk) when its
    observed access count has reached the victim chunk's per-row average
    score — one-touch tail ids read through without displacing
    ``chunk_rows`` warmer rows (the chunk-granularity analogue of cache
    bypass; an unwarmed cache starts with empty chunks, so it still
    fills reactively).
    """

    def __init__(self, capacity_rows: int, row_dim: int,
                 chunk_rows: int = 64) -> None:
        if capacity_rows <= 0:
            raise ValueError("capacity_rows must be positive")
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        super().__init__()
        self.chunk_rows = min(chunk_rows, capacity_rows)
        self.capacity_chunks = max(1, capacity_rows // self.chunk_rows)
        self.row_dim = row_dim
        shape = (self.capacity_chunks, self.chunk_rows)
        self._data = np.zeros(shape + (row_dim,), dtype=np.float32)
        self._row_ids = np.full(shape, -1, dtype=np.int64)
        self._dirty = np.zeros(shape, dtype=bool)
        self._fill_counts = np.zeros(self.capacity_chunks, dtype=np.int64)
        self._scores = np.zeros(self.capacity_chunks, dtype=np.float64)
        self._loc: Dict[int, Tuple[int, int]] = {}  # row_id -> (chunk, slot)
        self._freq: Dict[int, int] = {}  # observed access counts
        self._open: Optional[int] = None  # chunk currently accepting rows
        self.warmed_rows = 0

    @property
    def capacity_rows(self) -> int:
        return self.capacity_chunks * self.chunk_rows

    # ------------------------------------------------------------------
    # chunk management
    # ------------------------------------------------------------------
    def _evict_chunk(self, chunk: int, backing: ArrayBackingStore) -> None:
        """Drop every row of ``chunk``, writing back the dirty ones."""
        occupied = int(self._fill_counts[chunk])
        if occupied == 0:
            return
        dirty = np.nonzero(self._dirty[chunk, :occupied])[0]
        if len(dirty):
            backing.write_rows(self._row_ids[chunk, dirty],
                               self._data[chunk, dirty])
            self.stats.writebacks += len(dirty)
        for slot in range(occupied):
            del self._loc[int(self._row_ids[chunk, slot])]
        self.stats.evictions += occupied
        self._row_ids[chunk] = -1
        self._dirty[chunk] = False
        self._fill_counts[chunk] = 0
        self._scores[chunk] = 0.0

    def _alloc_chunk(self, backing: ArrayBackingStore) -> int:
        """A chunk with free slots: an empty one, else evict the coldest."""
        empty = np.nonzero(self._fill_counts == 0)[0]
        if len(empty):
            return int(empty[0])
        victim = int(np.argmin(self._scores))
        self._evict_chunk(victim, backing)
        return victim

    def _has_free_slot(self) -> bool:
        if self._open is not None \
                and self._fill_counts[self._open] < self.chunk_rows:
            return True
        return bool(np.any(self._fill_counts == 0))

    def _admission_ok(self, row_id: int) -> bool:
        """Admit into free space always; once full, only when the row's
        observed frequency reaches the victim chunk's per-row average."""
        if self._has_free_slot():
            return True
        victim_avg = float(np.min(self._scores)) / self.chunk_rows
        return self._freq.get(row_id, 0) >= victim_avg

    def _admit(self, row_id: int, value: np.ndarray, dirty: bool,
               backing: ArrayBackingStore, score: float) -> None:
        if self._open is None \
                or self._fill_counts[self._open] >= self.chunk_rows:
            self._open = self._alloc_chunk(backing)
        chunk = self._open
        slot = int(self._fill_counts[chunk])
        self._row_ids[chunk, slot] = row_id
        self._data[chunk, slot] = value
        self._dirty[chunk, slot] = dirty
        self._fill_counts[chunk] = slot + 1
        self._scores[chunk] += score
        self._loc[row_id] = (chunk, slot)

    # ------------------------------------------------------------------
    # warm-up from frequency statistics
    # ------------------------------------------------------------------
    def warm(self, histogram: np.ndarray, backing: ArrayBackingStore,
             min_count: int = 1) -> int:
        """Pre-pack the hottest rows, chunk by chunk, in frequency order.

        ``histogram[i]`` is the observed (or estimated) access count of
        row ``i`` — from :class:`repro.data.FrequencyStats`, the ingestion
        pipeline, or any supplied estimate. Rows seen fewer than
        ``min_count`` times are not worth residency and are skipped.
        Returns the number of rows warmed. Warming evicts nothing it just
        loaded: it fills empty chunks only and stops at capacity.
        """
        histogram = np.asarray(histogram)
        if histogram.ndim != 1 or len(histogram) != backing.num_rows:
            raise ValueError(
                f"histogram must have one count per backing row "
                f"({backing.num_rows}), got shape {histogram.shape}")
        order = np.argsort(-histogram, kind="stable")
        order = order[histogram[order] >= min_count]
        order = np.array([i for i in order if int(i) not in self._loc],
                         dtype=np.int64)
        free_rows = int(np.sum(self._fill_counts == 0)) * self.chunk_rows
        ids = order[:free_rows]
        for start in range(0, len(ids), self.chunk_rows):
            chunk_ids = ids[start:start + self.chunk_rows]
            chunk = self._alloc_chunk(backing)
            n = len(chunk_ids)
            self._row_ids[chunk, :n] = chunk_ids
            self._data[chunk, :n] = backing.read_rows(chunk_ids)
            self._fill_counts[chunk] = n
            self._scores[chunk] = float(histogram[chunk_ids].sum())
            for slot, row_id in enumerate(chunk_ids):
                self._loc[int(row_id)] = (chunk, slot)
        self.warmed_rows += len(ids)
        self.stats.fills += len(ids)
        return len(ids)

    # ------------------------------------------------------------------
    # RowCache protocol
    # ------------------------------------------------------------------
    def read(self, row_ids: np.ndarray,
             backing: ArrayBackingStore) -> np.ndarray:
        out = np.empty((len(row_ids), self.row_dim), dtype=np.float32)
        for i, row_id in enumerate(np.asarray(row_ids, dtype=np.int64)):
            row_id = int(row_id)
            freq = self._freq[row_id] = self._freq.get(row_id, 0) + 1
            loc = self._loc.get(row_id)
            if loc is not None:
                self.stats.hits += 1
                self._scores[loc[0]] += 1.0
                out[i] = self._data[loc]
            else:
                self.stats.misses += 1
                value = backing.read_rows(
                    np.array([row_id], dtype=np.int64))[0]
                self.stats.fills += 1
                if self._admission_ok(row_id):
                    self._admit(row_id, value, dirty=False,
                                backing=backing, score=float(freq))
                out[i] = value
        return out

    def write(self, row_ids: np.ndarray, values: np.ndarray,
              backing: ArrayBackingStore) -> None:
        for i, row_id in enumerate(np.asarray(row_ids, dtype=np.int64)):
            row_id = int(row_id)
            freq = self._freq[row_id] = self._freq.get(row_id, 0) + 1
            loc = self._loc.get(row_id)
            if loc is not None:
                self.stats.hits += 1
                self._scores[loc[0]] += 1.0
                self._data[loc] = values[i]
                self._dirty[loc] = True
            elif self._admission_ok(row_id):
                # write-allocate: the full row is being replaced, so no
                # backing read is needed
                self.stats.misses += 1
                self._admit(row_id, values[i], dirty=True, backing=backing,
                            score=float(freq))
            else:
                # bypassed write goes straight through to the slow tier
                self.stats.misses += 1
                backing.write_rows(np.array([row_id], dtype=np.int64),
                                   values[i][None, :])

    def flush(self, backing: ArrayBackingStore) -> int:
        count = 0
        for chunk in range(self.capacity_chunks):
            occupied = int(self._fill_counts[chunk])
            if occupied == 0:
                continue
            dirty = np.nonzero(self._dirty[chunk, :occupied])[0]
            if len(dirty):
                backing.write_rows(self._row_ids[chunk, dirty],
                                   self._data[chunk, dirty])
                self.stats.writebacks += len(dirty)
                self._dirty[chunk, dirty] = False
                count += len(dirty)
        return count

    def contains(self, row_id: int) -> bool:
        return int(row_id) in self._loc

    def prefetch_rows(self, row_ids: np.ndarray,
                      backing: ArrayBackingStore) -> int:
        """Stage rows for an upcoming batch; misses triggered here count
        as ``prefetched_rows``, never as demand misses."""
        staged = 0
        for row_id in np.unique(np.asarray(row_ids, dtype=np.int64)):
            row_id = int(row_id)
            if row_id in self._loc:
                continue
            value = backing.read_rows(np.array([row_id], dtype=np.int64))[0]
            self._admit(row_id, value, dirty=False, backing=backing,
                        score=1.0)
            self.stats.fills += 1
            self.stats.prefetched_rows += 1
            staged += 1
        return staged


class PrefetchPipeline:
    """Stage batch ``k+1``'s rows while batch ``k`` computes.

    The simulator executes sequentially, so overlap is *accounted*, not
    threaded: each :meth:`stage` measures its own wall time inside a
    ``cache.prefetch`` span and, given the compute window it would have
    run under, splits it into hidden and exposed seconds. The benchmark
    prices exposed prefetch bytes at slow-tier bandwidth — the pipelined
    counterpart of the ingestion pipeline's double-buffered batch
    prefetch (Section 4.3 of the paper).

    Works with any :class:`RowCache`; the cache's ``prefetched_rows``
    stat and the span tree record what was staged and when.
    """

    def __init__(self, cache, backing: ArrayBackingStore,
                 tracer=None) -> None:
        self.cache = cache
        self.backing = backing
        self.tracer = as_tracer(tracer)
        self.batches_staged = 0
        self.rows_staged = 0
        self.bytes_staged = 0
        self.prefetch_s = 0.0
        self.hidden_s = 0.0
        self.exposed_s = 0.0

    def stage(self, next_ids: np.ndarray,
              compute_s: Optional[float] = None) -> int:
        """Prefetch ``next_ids`` under a compute window of ``compute_s``
        seconds (``None`` means no overlap credit). Returns rows staged."""
        bytes_before = self.backing.bytes_read
        t0 = time.perf_counter()
        with self.tracer.span("cache.prefetch", cat="cache",
                              rows=int(len(next_ids))) as span:
            staged = self.cache.prefetch_rows(next_ids, self.backing)
            if span is not None and hasattr(span, "set"):
                span.set(staged=int(staged))
        elapsed = time.perf_counter() - t0
        self.batches_staged += 1
        self.rows_staged += staged
        self.bytes_staged += self.backing.bytes_read - bytes_before
        self.prefetch_s += elapsed
        hidden = min(elapsed, compute_s) if compute_s is not None else 0.0
        self.hidden_s += hidden
        self.exposed_s += elapsed - hidden
        return staged

    def overlap_report(self) -> Dict[str, float]:
        """Measured staging totals and how much hid under compute."""
        return {
            "batches_staged": self.batches_staged,
            "rows_staged": self.rows_staged,
            "bytes_staged": self.bytes_staged,
            "prefetch_s": self.prefetch_s,
            "hidden_s": self.hidden_s,
            "exposed_s": self.exposed_s,
            "hidden_frac": (self.hidden_s / self.prefetch_s
                            if self.prefetch_s else 0.0),
        }

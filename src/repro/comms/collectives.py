"""Numerically exact collectives over simulated ranks.

The reproduction runs every rank inside one process in lock-step, so a
collective is a pure function from per-rank inputs to per-rank outputs.
This gives the *correctness* path of the comms stack (real data actually
moves between ranks and training results are exact); the *performance*
path is the analytical model in :mod:`repro.comms.perf_model`.

Conventions match ``torch.distributed``:

* ``all_reduce(xs)`` — every rank receives the elementwise sum.
* ``all_gather(xs)`` — every rank receives the list of all inputs.
* ``reduce_scatter(xs)`` — rank r receives the sum of everyone's r-th chunk.
* ``all_to_all(xss)`` — ``xss[src][dst]`` is sent from src to dst; rank r
  receives ``[xss[0][r], xss[1][r], ...]``.
* ``broadcast(xs, root)`` — every rank receives ``xs[root]``.

Reductions are performed in a canonical order (rank 0 + rank 1 + ...) so
results are bitwise identical across repeated runs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

__all__ = ["all_reduce", "all_gather", "reduce_scatter", "all_to_all",
           "all_to_all_single", "broadcast", "all_reduce_stacked",
           "all_gather_stacked"]

Codec = Callable[[np.ndarray], np.ndarray]


def _check_world(inputs: list) -> int:
    if not inputs:
        raise ValueError("collective needs at least one rank")
    return len(inputs)


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _check_world_stacked(stacked: np.ndarray) -> int:
    stacked = np.asarray(stacked)
    if stacked.ndim == 0 or stacked.shape[0] == 0:
        raise ValueError("collective needs at least one rank")
    return int(stacked.shape[0])


def all_reduce(inputs: List[np.ndarray],
               codec: Optional[Codec] = None) -> List[np.ndarray]:
    """Elementwise sum over ranks, delivered to every rank.

    ``codec`` (e.g. a bf16 round-trip) is applied to each rank's
    contribution before reduction, modelling quantized collectives.
    """
    world = _check_world(inputs)
    shapes = {x.shape for x in inputs}
    if len(shapes) != 1:
        raise ValueError(f"all_reduce inputs must share a shape, got {shapes}")
    codec = codec or _identity
    total = codec(np.asarray(inputs[0], dtype=np.float32)).copy()
    for x in inputs[1:]:
        total = total + codec(np.asarray(x, dtype=np.float32))
    return [total.copy() for _ in range(world)]


def all_reduce_stacked(stacked: np.ndarray,
                       codec: Optional[Codec] = None) -> np.ndarray:
    """Leading-axis :func:`all_reduce`: ``stacked[r]`` is rank ``r``'s
    contribution; the returned ``(W, ...)`` array holds every rank's
    (identical) reduced result.

    The reduction is an explicit sequential sum over leading-axis
    slices — NOT ``np.sum(axis=0)``, whose pairwise summation would
    change the float accumulation order — so each output slice is
    bitwise identical to the list-based collective on the same data.
    """
    world = _check_world_stacked(stacked)
    codec = codec or _identity
    total = codec(np.asarray(stacked[0], dtype=np.float32)).copy()
    for r in range(1, world):
        total = total + codec(np.asarray(stacked[r], dtype=np.float32))
    out = np.empty((world,) + total.shape, dtype=total.dtype)
    out[:] = total
    return out


def all_gather_stacked(stacked: np.ndarray,
                       codec: Optional[Codec] = None) -> np.ndarray:
    """Leading-axis :func:`all_gather`: returns one ``(W, ...)`` array —
    the gathered payload every rank receives (slice ``s`` is rank
    ``s``'s contribution). Callers must treat the result as read-only;
    unlike the list form, destinations share storage."""
    world = _check_world_stacked(stacked)
    codec = codec or _identity
    return np.stack([codec(np.asarray(stacked[r])) for r in range(world)],
                    axis=0)


def all_gather(inputs: List[np.ndarray],
               codec: Optional[Codec] = None) -> List[List[np.ndarray]]:
    world = _check_world(inputs)
    codec = codec or _identity
    gathered = [codec(np.asarray(x)).copy() for x in inputs]
    return [[g.copy() for g in gathered] for _ in range(world)]


def reduce_scatter(inputs: List[List[np.ndarray]],
                   codec: Optional[Codec] = None) -> List[np.ndarray]:
    """``inputs[rank][chunk]``: rank r receives sum over ranks of chunk r."""
    world = _check_world(inputs)
    for chunks in inputs:
        if len(chunks) != world:
            raise ValueError(
                f"each rank must provide {world} chunks, got {len(chunks)}")
    codec = codec or _identity
    outputs = []
    for r in range(world):
        total = codec(np.asarray(inputs[0][r], dtype=np.float32)).copy()
        for src in range(1, world):
            total = total + codec(
                np.asarray(inputs[src][r], dtype=np.float32))
        outputs.append(total)
    return outputs


def all_to_all(inputs: List[List[np.ndarray]],
               codec: Optional[Codec] = None) -> List[List[np.ndarray]]:
    """``inputs[src][dst]`` -> ``outputs[dst][src]`` (NCCL AlltoAllv)."""
    world = _check_world(inputs)
    for row in inputs:
        if len(row) != world:
            raise ValueError(
                f"each rank must address {world} peers, got {len(row)}")
    codec = codec or _identity
    return [[codec(np.asarray(inputs[src][dst])).copy()
             for src in range(world)] for dst in range(world)]


def all_to_all_single(inputs: List[np.ndarray],
                      codec: Optional[Codec] = None) -> List[np.ndarray]:
    """Equal-split AlltoAll: each rank's input splits into W equal chunks
    along axis 0; output concatenates the received chunks."""
    world = _check_world(inputs)
    split = [np.array_split(np.asarray(x), world, axis=0) for x in inputs]
    exchanged = all_to_all(split, codec=codec)
    return [np.concatenate(chunks, axis=0) for chunks in exchanged]


def broadcast(inputs: List[np.ndarray], root: int = 0,
              codec: Optional[Codec] = None) -> List[np.ndarray]:
    world = _check_world(inputs)
    if not 0 <= root < world:
        raise ValueError(f"root {root} outside world size {world}")
    codec = codec or _identity
    payload = codec(np.asarray(inputs[root])).copy()
    return [payload.copy() for _ in range(world)]

"""Tests for sharding schemes: shard generation and plan validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import EmbeddingTableConfig
from repro.sharding import (Shard, ShardingPlan, ShardingScheme,
                            TableShardingPlan, shard_table)


def cfg(name="t", h=100, d=16):
    return EmbeddingTableConfig(name, h, d)


class TestShard:
    def test_properties(self):
        s = Shard("t", 0, (10, 30), (0, 8))
        assert s.num_rows == 20 and s.num_cols == 8
        assert s.num_parameters == 160

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Shard("t", 0, (5, 5), (0, 8))
        with pytest.raises(ValueError):
            Shard("t", 0, (-1, 5), (0, 8))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            Shard("t", -1, (0, 5), (0, 8))


class TestShardTable:
    def test_table_wise_single_shard(self):
        plan = shard_table(cfg(), ShardingScheme.TABLE_WISE, [3])
        assert len(plan.shards) == 1
        s = plan.shards[0]
        assert s.rank == 3
        assert s.row_range == (0, 100) and s.col_range == (0, 16)

    def test_row_wise_covers_all_rows(self):
        plan = shard_table(cfg(h=100), ShardingScheme.ROW_WISE, [0, 1, 2])
        rows = sorted(s.row_range for s in plan.shards)
        assert rows[0][0] == 0 and rows[-1][1] == 100
        # contiguous
        for (a, b), (c, _) in zip(rows, rows[1:]):
            assert b == c

    def test_row_wise_remainder_distribution(self):
        plan = shard_table(cfg(h=10), ShardingScheme.ROW_WISE, [0, 1, 2])
        sizes = sorted(s.num_rows for s in plan.shards)
        assert sizes == [3, 3, 4]

    def test_column_wise_covers_all_cols(self):
        plan = shard_table(cfg(d=16), ShardingScheme.COLUMN_WISE, [0, 1])
        cols = sorted(s.col_range for s in plan.shards)
        assert cols == [(0, 8), (8, 16)]

    def test_data_parallel_replicates(self):
        plan = shard_table(cfg(), ShardingScheme.DATA_PARALLEL, [0, 1, 2])
        assert len(plan.shards) == 3
        for s in plan.shards:
            assert s.num_parameters == 100 * 16

    def test_more_ranks_than_rows(self):
        plan = shard_table(cfg(h=2), ShardingScheme.ROW_WISE, [0, 1, 2, 3])
        assert len(plan.shards) == 2  # empty shards dropped

    def test_empty_ranks_raise(self):
        with pytest.raises(ValueError):
            shard_table(cfg(), ShardingScheme.TABLE_WISE, [])

    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_row_wise_exact_coverage_property(self, h, n_ranks):
        plan = shard_table(cfg(h=h), ShardingScheme.ROW_WISE,
                           list(range(n_ranks)))
        total = sum(s.num_rows for s in plan.shards)
        assert total == h
        # no overlaps: intervals sorted by start must be disjoint
        intervals = sorted(s.row_range for s in plan.shards)
        for (a, b), (c, d) in zip(intervals, intervals[1:]):
            assert b <= c


class TestValidation:
    def test_gap_detected(self):
        plan = TableShardingPlan(
            config=cfg(h=10, d=4), scheme=ShardingScheme.ROW_WISE,
            shards=[Shard("t", 0, (0, 5), (0, 4))])
        with pytest.raises(ValueError, match="cover"):
            plan.validate()

    def test_duplicate_shard_detected(self):
        plan = TableShardingPlan(
            config=cfg(h=10, d=4), scheme=ShardingScheme.ROW_WISE,
            shards=[Shard("t", 0, (0, 10), (0, 4)),
                    Shard("t", 1, (0, 10), (0, 4))])
        with pytest.raises(ValueError, match="duplicate"):
            plan.validate()

    def test_overflow_detected(self):
        plan = TableShardingPlan(
            config=cfg(h=10, d=4), scheme=ShardingScheme.ROW_WISE,
            shards=[Shard("t", 0, (0, 12), (0, 4))])
        with pytest.raises(ValueError, match="exceeds"):
            plan.validate()

    def test_dp_partial_replica_detected(self):
        plan = TableShardingPlan(
            config=cfg(h=10, d=4), scheme=ShardingScheme.DATA_PARALLEL,
            shards=[Shard("t", 0, (0, 5), (0, 4))])
        with pytest.raises(ValueError, match="DP"):
            plan.validate()

    def test_dp_duplicate_rank_detected(self):
        plan = TableShardingPlan(
            config=cfg(h=10, d=4), scheme=ShardingScheme.DATA_PARALLEL,
            shards=[Shard("t", 0, (0, 10), (0, 4)),
                    Shard("t", 0, (0, 10), (0, 4))])
        with pytest.raises(ValueError, match="duplicate"):
            plan.validate()

    def test_row_wise_must_not_split_columns(self):
        plan = TableShardingPlan(
            config=cfg(h=10, d=4), scheme=ShardingScheme.ROW_WISE,
            shards=[Shard("t", 0, (0, 10), (0, 2)),
                    Shard("t", 1, (0, 10), (2, 4))])
        with pytest.raises(ValueError, match="split cols"):
            plan.validate()

    def test_plan_rank_bound(self):
        plan = ShardingPlan(world_size=2)
        plan.tables["t"] = shard_table(cfg(), ShardingScheme.TABLE_WISE, [5])
        with pytest.raises(ValueError, match="world"):
            plan.validate()


class TestShardingPlanQueries:
    def make_plan(self):
        plan = ShardingPlan(world_size=4)
        plan.tables["a"] = shard_table(cfg("a"), ShardingScheme.TABLE_WISE,
                                       [0])
        plan.tables["b"] = shard_table(cfg("b", h=40),
                                       ShardingScheme.ROW_WISE, [0, 1, 2, 3])
        plan.tables["c"] = shard_table(cfg("c", h=8),
                                       ShardingScheme.DATA_PARALLEL,
                                       [0, 1, 2, 3])
        return plan

    def test_shards_on_rank(self):
        plan = self.make_plan()
        on_zero = plan.shards_on_rank(0)
        assert {s.table for s in on_zero} == {"a", "b", "c"}
        on_one = plan.shards_on_rank(1)
        assert {s.table for s in on_one} == {"b", "c"}

    def test_scheme_of(self):
        plan = self.make_plan()
        assert plan.scheme_of("a") == ShardingScheme.TABLE_WISE
        assert plan.scheme_of("c") == ShardingScheme.DATA_PARALLEL

    def test_memory_per_rank(self):
        plan = self.make_plan()
        mem = plan.memory_per_rank(bytes_per_element=4)
        # rank 0: table a (1600) + b shard (10*16) + c replica (128)
        assert mem[0] == (100 * 16 + 10 * 16 + 8 * 16) * 4
        assert mem[1] == (10 * 16 + 8 * 16) * 4

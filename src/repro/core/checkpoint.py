"""Checkpointing for distributed DLRM training (paper Section 4.4, [9]).

The paper notes checkpointing a multi-terabyte model is its own systems
problem — frequent enough to bound lost work, cheap enough not to stall
training. Check-N-Run [9] solves it with *differential* checkpoints (only
rows touched since the last checkpoint) and *quantized* storage. Both are
reproduced here on top of the Neo trainer:

* :class:`CheckpointManager` — full save/load of trainer state (dense
  replicas + dense optimizer state + every embedding shard) with exact
  resume — exact enough that a recovery restoring the original world
  size continues *bitwise identically* to an uninterrupted run
  (asserted by ``tests/test_resilience_recovery.py``);
* differential mode — per-shard dirty-row tracking writes only rows whose
  values changed since the previous checkpoint;
* optional FP16 quantization of the stored embedding payload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .trainer import NeoTrainer

__all__ = ["CheckpointStats", "CheckpointManager"]


@dataclass
class CheckpointStats:
    """Accounting for one checkpoint write."""

    step: int
    full_rows: int
    written_rows: int
    payload_bytes: int
    differential: bool

    @property
    def write_fraction(self) -> float:
        return self.written_rows / self.full_rows if self.full_rows else 0.0


class CheckpointManager:
    """Saves and restores :class:`NeoTrainer` state.

    Parameters
    ----------
    directory:
        Where ``.npz`` checkpoint files land.
    differential:
        If true, embedding payloads contain only rows that changed since
        the previous checkpoint (Check-N-Run's key trick — under Zipf
        traffic most rows are cold between checkpoints). The first
        checkpoint is always full.
    precision:
        ``"fp32"`` or ``"fp16"`` storage for embedding rows. FP16 halves
        checkpoint size; restore dequantizes (lossy by one rounding).
    """

    def __init__(self, directory: str, differential: bool = False,
                 precision: str = "fp32") -> None:
        if precision not in ("fp32", "fp16"):
            raise ValueError(f"precision must be fp32/fp16, got {precision!r}")
        self.directory = directory
        self.differential = differential
        self.precision = precision
        os.makedirs(directory, exist_ok=True)
        self._last_tables: Dict[str, np.ndarray] = {}
        self.history: List[CheckpointStats] = []

    # ------------------------------------------------------------------
    def _path(self, step: int) -> str:
        return os.path.join(self.directory, f"ckpt_{step:08d}.npz")

    def _encode_rows(self, rows: np.ndarray) -> np.ndarray:
        if self.precision == "fp16":
            return rows.astype(np.float16)
        return rows.astype(np.float32)

    def save(self, trainer: NeoTrainer) -> str:
        """Write a checkpoint of the trainer's current state."""
        payload: Dict[str, np.ndarray] = {
            "__step__": np.array([trainer.steps], dtype=np.int64)}
        # dense parameters and optimizer state (momentum buffers, Adam
        # moments, ...); replicas are identical, so rank 0 suffices
        for i, p in enumerate(trainer.ranks[0].dense_parameters()):
            payload[f"dense/{i}"] = p.data
            for key, value in trainer.ranks[0].dense_opt.state_for(p).items():
                payload[f"opt/{i}/{key}"] = np.asarray(value)
        # embedding tables, gathered from shards
        full_rows = 0
        written_rows = 0
        for t in trainer.config.tables:
            table = trainer.gather_table(t.name)
            full_rows += table.shape[0]
            previous = self._last_tables.get(t.name)
            if self.differential and previous is not None:
                changed = np.nonzero(np.any(table != previous, axis=1))[0]
                payload[f"emb/{t.name}/rows"] = changed.astype(np.int64)
                payload[f"emb/{t.name}/values"] = self._encode_rows(
                    table[changed])
                written_rows += len(changed)
            else:
                payload[f"emb/{t.name}/rows"] = np.arange(
                    table.shape[0], dtype=np.int64)
                payload[f"emb/{t.name}/values"] = self._encode_rows(table)
                written_rows += table.shape[0]
            self._last_tables[t.name] = table
        path = self._path(trainer.steps)
        np.savez(path, **payload)
        self.history.append(CheckpointStats(
            step=trainer.steps, full_rows=full_rows,
            written_rows=written_rows,
            payload_bytes=os.path.getsize(path),
            differential=self.differential and len(self.history) > 0))
        return path

    # ------------------------------------------------------------------
    def list_steps(self) -> List[int]:
        steps = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("ckpt_") and name.endswith(".npz"):
                steps.append(int(name[5:-4]))
        return steps

    def retain_last(self, keep: int) -> List[int]:
        """Delete all but the newest ``keep`` checkpoints.

        Differential mode keeps everything: each file is a delta against
        its predecessor, so the chain back to the last full checkpoint
        must survive (Check-N-Run prunes at full-checkpoint boundaries;
        we conservatively refuse entirely).
        Returns the steps that were deleted.
        """
        if keep <= 0:
            raise ValueError("keep must be positive")
        if self.differential:
            raise ValueError(
                "cannot prune differential chains: older deltas are "
                "needed to reconstruct newer checkpoints")
        steps = self.list_steps()
        doomed = steps[:-keep] if len(steps) > keep else []
        for step in doomed:
            os.remove(self._path(step))
        return doomed

    def load(self, trainer: NeoTrainer, step: Optional[int] = None) -> int:
        """Restore trainer state in place.

        Differential checkpoints are reconstructed by replaying the chain
        from the most recent full checkpoint. Returns the restored step.
        """
        steps = self.list_steps()
        if not steps:
            raise FileNotFoundError(f"no checkpoints in {self.directory}")
        target = steps[-1] if step is None else step
        if target not in steps:
            raise FileNotFoundError(f"no checkpoint for step {target}")
        chain = [s for s in steps if s <= target]
        tables: Dict[str, np.ndarray] = {}
        dense: Dict[int, np.ndarray] = {}
        opt_state: Dict[int, Dict[str, np.ndarray]] = {}
        restored_step = 0
        for s in chain:
            with np.load(self._path(s)) as data:
                restored_step = int(data["__step__"][0])
                for key in data.files:
                    if key.startswith("dense/"):
                        dense[int(key.split("/")[1])] = data[key]
                    elif key.startswith("opt/"):
                        _, idx, name = key.split("/", 2)
                        opt_state.setdefault(int(idx), {})[name] = data[key]
                for t in trainer.config.tables:
                    rows = data[f"emb/{t.name}/rows"]
                    values = data[f"emb/{t.name}/values"].astype(np.float32)
                    if t.name not in tables:
                        tables[t.name] = np.zeros(
                            (t.num_embeddings, t.embedding_dim),
                            dtype=np.float32)
                    tables[t.name][rows] = values
        # write back into every rank's replica (or the stacked storage —
        # the trainer knows its execution mode) and every shard;
        # optimizer state is replaced wholesale so a momentum/Adam
        # resume is exact (checkpoints predating opt-state capture
        # simply reset it)
        trainer.load_dense_state(dense, opt_state)
        for t in trainer.config.tables:
            table_plan = trainer.plan.tables[t.name]
            for shard in table_plan.shards:
                r0, r1 = shard.row_range
                c0, c1 = shard.col_range
                trainer._shard_tables[shard].weight = \
                    tables[t.name][r0:r1, c0:c1].copy()
        trainer.steps = restored_step
        return restored_step

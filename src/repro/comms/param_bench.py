"""PARAM-style communication benchmarks (paper Appendix A).

The paper open-sourced PARAM to fix two gaps in NCCL-tests/OSU-style
microbenchmarks: they only sweep power-of-two sizes ("bench mode" is
still useful for trends) and they can't mimic a real workload's exact
collective sequence ("replay mode"). Both modes are reproduced over the
reproduction's latency model:

* :func:`bench_mode` — sweep a collective over message sizes on a
  topology, returning (size, time, achieved bandwidth) rows;
* :class:`CommsTrace` / :func:`replay_mode` — capture the exact sequence
  of collectives a training run issued (name + wire bytes, from the
  process group log) and replay it against any topology, answering
  "what would this workload's comms cost on that cluster?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from . import perf_model
from .process_group import CommsLog
from .topology import ClusterTopology

__all__ = ["BenchRow", "bench_mode", "CommsTrace", "trace_from_log",
           "replay_mode"]

_COLLECTIVE_TIMES = {
    "all_to_all": perf_model.all_to_all_time,
    "all_reduce": perf_model.all_reduce_time,
    "reduce_scatter": perf_model.reduce_scatter_time,
    "all_gather": perf_model.all_gather_time,
    "broadcast": perf_model.broadcast_time,
}


@dataclass(frozen=True)
class BenchRow:
    message_bytes: int
    seconds: float
    achieved_bw: float


def bench_mode(collective: str, topology: ClusterTopology,
               min_exponent: int = 10, max_exponent: int = 28
               ) -> List[BenchRow]:
    """Sweep one collective over power-of-two per-GPU message sizes."""
    if collective not in _COLLECTIVE_TIMES:
        raise ValueError(f"unknown collective {collective!r}; expected one "
                         f"of {sorted(_COLLECTIVE_TIMES)}")
    if min_exponent > max_exponent:
        raise ValueError("min_exponent must be <= max_exponent")
    timer = _COLLECTIVE_TIMES[collective]
    rows = []
    for exp in range(min_exponent, max_exponent + 1):
        size = 2 ** exp
        seconds = timer(size, topology)
        bw = size / seconds if seconds > 0 else float("inf")
        rows.append(BenchRow(message_bytes=size, seconds=seconds,
                             achieved_bw=bw))
    return rows


@dataclass
class CommsTrace:
    """An ordered record of collectives: (base name, per-GPU bytes)."""

    events: List[Tuple[str, float]] = field(default_factory=list)

    def append(self, collective: str, per_gpu_bytes: float) -> None:
        base = collective.split("/")[0]
        if base not in _COLLECTIVE_TIMES:
            raise ValueError(f"unknown collective {collective!r}")
        self.events.append((base, float(per_gpu_bytes)))

    @property
    def total_bytes(self) -> float:
        return sum(b for _, b in self.events)

    def __len__(self) -> int:
        return len(self.events)


def trace_from_log(log: CommsLog, world_size: int) -> CommsTrace:
    """Approximate a trace from an aggregated :class:`CommsLog`.

    The log stores totals per collective type; the reconstructed trace
    spreads each type's bytes evenly over its call count — exact for the
    steady-state DLRM loop where every iteration issues the same sequence.
    """
    trace = CommsTrace()
    for name, calls in log.calls.items():
        total_wire = log.wire_bytes[name]
        per_call_per_gpu = total_wire / calls / max(world_size, 1)
        for _ in range(calls):
            trace.append(name, per_call_per_gpu)
    return trace


def replay_mode(trace: CommsTrace,
                topology: ClusterTopology) -> Dict[str, float]:
    """Replay a captured trace against a topology.

    Returns modeled seconds per collective type plus ``"total"`` — the
    workload's communication cost on that cluster, serialized (overlap is
    the pipeline model's job, not the comms benchmark's).
    """
    out: Dict[str, float] = {}
    for name, per_gpu_bytes in trace.events:
        seconds = _COLLECTIVE_TIMES[name](per_gpu_bytes, topology)
        out[name] = out.get(name, 0.0) + seconds
    out["total"] = sum(v for k, v in out.items() if k != "total")
    return out

"""Table 3: target model configurations A1/A2/A3/F1.

The zoo synthesizes full-scale specs from Table 3's aggregate statistics;
this bench regenerates the table from the synthesized specs and checks
each column lands on the declared values.
"""

import pytest

from repro.models import MODEL_NAMES, TABLE3_REFERENCE, full_spec


def table3():
    rows = []
    for name in MODEL_NAMES:
        spec = full_spec(name)
        ref = TABLE3_REFERENCE[name]
        dims = [t.embedding_dim for t in spec.tables]
        rows.append((name,
                     f"{spec.num_parameters / 1e9:.0f}B",
                     f"{ref['num_parameters'] / 1e9:.0f}B",
                     len(spec.tables),
                     f"[{min(dims)}, {max(dims)}] avg {spec.avg_embedding_dim:.0f}",
                     f"{spec.avg_pooling:.0f}",
                     len(spec.mlp_layer_sizes),
                     spec.mlp_layer_sizes[0]))
    return rows


def test_table3_models(benchmark, report):
    rows = benchmark(table3)
    report("Table 3: target model configurations (synthesized vs declared)",
           ["model", "params", "paper", "tables", "emb dims", "avg L",
            "MLP layers", "MLP size"], rows)
    for name in MODEL_NAMES:
        spec = full_spec(name)
        ref = TABLE3_REFERENCE[name]
        assert spec.num_parameters == pytest.approx(ref["num_parameters"],
                                                    rel=0.15)
        assert len(spec.tables) == ref["num_tables"]
        assert len(spec.mlp_layer_sizes) == ref["num_mlp_layers"]
    # the capacity ordering that drives the whole paper
    sizes = {n: full_spec(n).num_parameters for n in MODEL_NAMES}
    assert sizes["A1"] < sizes["A2"] < sizes["A3"] < sizes["F1"]

"""Tests for exact sparse optimizers: determinism, merge semantics, and
equivalence with dense reference updates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             RowWiseAdaGrad, SparseAdaGrad, SparseAdam,
                             SparseGradient, SparseLAMB, SparseSGD,
                             merge_duplicate_rows, optimizer_state_bytes)


def make_table(h=8, d=4, seed=0):
    cfg = EmbeddingTableConfig("t", h, d)
    return EmbeddingTable(cfg, rng=np.random.default_rng(seed))


def sparse_grad(rows, values, h=8):
    return SparseGradient(rows=np.asarray(rows, dtype=np.int64),
                          values=np.asarray(values, dtype=np.float32),
                          num_embeddings=h)


class TestMergeDuplicateRows:
    def test_paper_example(self):
        """Rows {1,2} with g1 and {2,3} with g2 -> row 2 gets g1+g2."""
        rows = np.array([1, 2, 2, 3], dtype=np.int64)
        g = np.array([[1.0], [2.0], [10.0], [20.0]], dtype=np.float32)
        u, m = merge_duplicate_rows(rows, g)
        np.testing.assert_array_equal(u, [1, 2, 3])
        np.testing.assert_allclose(m, [[1.0], [12.0], [20.0]])

    def test_empty(self):
        u, m = merge_duplicate_rows(np.array([], dtype=np.int64),
                                    np.zeros((0, 3), dtype=np.float32))
        assert len(u) == 0 and m.shape == (0, 3)

    def test_unsorted_input(self):
        rows = np.array([5, 1, 5, 0], dtype=np.int64)
        g = np.ones((4, 2), dtype=np.float32)
        u, m = merge_duplicate_rows(rows, g)
        np.testing.assert_array_equal(u, [0, 1, 5])
        np.testing.assert_allclose(m[2], [2.0, 2.0])

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=40))
    @settings(max_examples=50)
    def test_merge_preserves_total_gradient(self, rows_list):
        """Sum of merged gradients equals sum of raw gradients."""
        rng = np.random.default_rng(len(rows_list))
        rows = np.array(rows_list, dtype=np.int64)
        g = rng.normal(size=(len(rows), 3)).astype(np.float32)
        u, m = merge_duplicate_rows(rows, g)
        assert len(u) == len(np.unique(rows))
        np.testing.assert_allclose(m.sum(axis=0), g.sum(axis=0), rtol=1e-4,
                                   atol=1e-5)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=20))
    @settings(max_examples=50)
    def test_output_rows_sorted_unique(self, rows_list):
        rows = np.array(rows_list, dtype=np.int64)
        g = np.ones((len(rows), 1), dtype=np.float32)
        u, _ = merge_duplicate_rows(rows, g)
        assert np.all(np.diff(u) > 0)


class TestSparseSGD:
    def test_single_update(self):
        table = make_table()
        before = table.weight.copy()
        opt = SparseSGD(lr=0.5)
        g = sparse_grad([2], [[1.0, 1.0, 1.0, 1.0]])
        opt.step(table, g)
        np.testing.assert_allclose(table.weight[2], before[2] - 0.5)
        np.testing.assert_array_equal(table.weight[0], before[0])

    def test_duplicates_merged_not_sequential(self):
        """For SGD merge == sequential, but verify merged arithmetic."""
        table = make_table()
        before = table.weight[3].copy()
        opt = SparseSGD(lr=1.0)
        opt.step(table, sparse_grad([3, 3], [[1.0] * 4, [2.0] * 4]))
        np.testing.assert_allclose(table.weight[3], before - 3.0, rtol=1e-6)

    def test_empty_grad_noop(self):
        table = make_table()
        before = table.weight.copy()
        SparseSGD(lr=1.0).step(table, sparse_grad([], np.zeros((0, 4))))
        np.testing.assert_array_equal(table.weight, before)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SparseSGD(lr=-1.0)


class TestSparseAdaGrad:
    def test_matches_dense_adagrad(self):
        """Scattering the sparse grad densely + dense AdaGrad == sparse."""
        table = make_table()
        dense_param = nn.Parameter(table.weight.copy())
        dense_opt = nn.AdaGrad([dense_param], lr=0.1)
        sparse_opt = SparseAdaGrad(lr=0.1)
        rng = np.random.default_rng(1)
        for step in range(5):
            rows = rng.integers(0, 8, size=6).astype(np.int64)
            values = rng.normal(size=(6, 4)).astype(np.float32)
            g = sparse_grad(rows, values)
            sparse_opt.step(table, g)
            # dense AdaGrad advances accumulators only where grad != 0,
            # which matches sparse semantics because untouched rows get 0
            dense_param.grad = g.to_dense()
            dense_opt.step()
        np.testing.assert_allclose(table.weight, dense_param.data, rtol=1e-4,
                                   atol=1e-6)

    def test_nonlinearity_requires_merging(self):
        """Applying duplicate rows sequentially differs from exact merge —
        the motivating bug class for Section 4.1.2."""
        t_exact = make_table(seed=3)
        t_seq = make_table(seed=3)
        g1 = np.full((1, 4), 1.0, dtype=np.float32)
        g2 = np.full((1, 4), 2.0, dtype=np.float32)
        SparseAdaGrad(lr=0.1).step(t_exact, sparse_grad([4, 4],
                                                        np.vstack([g1, g2])))
        seq_opt = SparseAdaGrad(lr=0.1)
        seq_opt.step(t_seq, sparse_grad([4], g1))
        seq_opt.step(t_seq, sparse_grad([4], g2))
        assert not np.allclose(t_exact.weight[4], t_seq.weight[4])


class TestRowWiseAdaGrad:
    def test_moment_is_1d(self):
        table = make_table()
        opt = RowWiseAdaGrad(lr=0.1)
        opt.step(table, sparse_grad([0, 1], np.ones((2, 4))))
        assert opt.state_for(table)["moment"].shape == (8,)

    def test_moment_update_formula(self):
        """m' = m + mean_j(g_j^2), one scalar per row."""
        table = make_table()
        opt = RowWiseAdaGrad(lr=0.1)
        g = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        opt.step(table, sparse_grad([5], g))
        expected = np.mean(g ** 2)
        assert opt.state_for(table)["moment"][5] == pytest.approx(expected)

    def test_update_uses_row_scale(self):
        table = make_table()
        before = table.weight[2].copy()
        opt = RowWiseAdaGrad(lr=0.1, eps=0.0)
        g = np.full((1, 4), 2.0, dtype=np.float32)
        opt.step(table, sparse_grad([2], g))
        # moment = 4.0, scale = 0.1 / 2.0, update = 0.05 * 2 = 0.1
        np.testing.assert_allclose(table.weight[2], before - 0.1, rtol=1e-5)

    def test_state_bytes_factor_d_smaller(self):
        full = SparseAdaGrad().state_bytes(1000, 64)
        rowwise = RowWiseAdaGrad().state_bytes(1000, 64)
        assert full == rowwise * 64


class TestSparseAdam:
    def test_first_step_is_lr_sized(self):
        table = make_table()
        before = table.weight[1].copy()
        opt = SparseAdam(lr=0.01, eps=0.0)
        opt.step(table, sparse_grad([1], np.full((1, 4), 7.0)))
        np.testing.assert_allclose(table.weight[1], before - 0.01, rtol=1e-4)

    def test_per_row_timesteps(self):
        table = make_table()
        opt = SparseAdam(lr=0.01)
        opt.step(table, sparse_grad([0], np.ones((1, 4))))
        opt.step(table, sparse_grad([0, 1], np.ones((2, 4))))
        t = opt.state_for(table)["t"]
        assert t[0] == 2 and t[1] == 1 and t[2] == 0

    def test_untouched_rows_unchanged(self):
        table = make_table()
        before = table.weight.copy()
        SparseAdam(lr=0.5).step(table, sparse_grad([3], np.ones((1, 4))))
        mask = np.ones(8, dtype=bool)
        mask[3] = False
        np.testing.assert_array_equal(table.weight[mask], before[mask])


class TestSparseLAMB:
    def test_update_moves_weights(self):
        table = make_table()
        before = table.weight.copy()
        SparseLAMB(lr=0.1).step(table, sparse_grad([2], np.ones((1, 4))))
        assert not np.allclose(table.weight[2], before[2])

    def test_finite_on_zero_row(self):
        cfg = EmbeddingTableConfig("t", 4, 4)
        table = EmbeddingTable(cfg, weight=np.zeros((4, 4)))
        SparseLAMB(lr=0.1).step(table, sparse_grad([0], np.ones((1, 4)), h=4))
        assert np.all(np.isfinite(table.weight))


class TestDeterminism:
    @pytest.mark.parametrize("opt_cls", [SparseSGD, SparseAdaGrad,
                                         RowWiseAdaGrad, SparseAdam,
                                         SparseLAMB])
    def test_batch_order_invariance(self, opt_cls):
        """Shuffling the order of (row, grad) pairs in a batch yields
        bitwise identical parameters — the determinism claim of 4.1.2."""
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 8, size=12).astype(np.int64)
        values = rng.normal(size=(12, 4)).astype(np.float32)
        perm = rng.permutation(12)

        t1, t2 = make_table(seed=5), make_table(seed=5)
        opt_cls(lr=0.1).step(t1, sparse_grad(rows, values))
        opt_cls(lr=0.1).step(t2, sparse_grad(rows[perm], values[perm]))
        # note: exact bitwise equality, not allclose
        assert np.array_equal(t1.weight, t2.weight)


class TestStateBytes:
    def test_known_values(self):
        assert optimizer_state_bytes("sgd", 100, 8) == 0
        assert optimizer_state_bytes("adagrad", 100, 8) == 100 * 8 * 4
        assert optimizer_state_bytes("rowwise_adagrad", 100, 8) == 400

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            optimizer_state_bytes("rmsprop", 10, 10)

    def test_f1_capacity_arithmetic(self):
        """Section 5.3.3: 12T params FP32 + elementwise state = 96 TB."""
        params = 12e12
        fp32_with_adagrad = params * 4 * 2
        assert fp32_with_adagrad == pytest.approx(96e12)

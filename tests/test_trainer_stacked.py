"""Rank-stacked trainer vs the looped reference oracle.

The stacked path (``NeoTrainer(..., stacked=True)``, the default) packs
all ranks' dense state into leading-axis ``(R, ...)`` arrays and
advances every replica with one batched kernel per phase. It is only
allowed to exist because it is *bitwise identical* to the sequential
per-rank loop: this file fuzzes that identity over random
architectures, world sizes, sharding schemes and optimizers — losses,
dense parameters, comms byte/call logs, and eval outputs — and pins
the compatibility surface (per-rank ``dense_opt`` facade, checkpoint
state, ``replicas_in_sync``) that the rest of the repo reads through.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad, SparseSGD
from repro.models import DLRMConfig
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

SCHEMES = [ShardingScheme.TABLE_WISE, ShardingScheme.ROW_WISE,
           ShardingScheme.COLUMN_WISE, ShardingScheme.DATA_PARALLEL]

OPTIMIZERS = {
    "sgd": lambda p: nn.SGD(p, lr=0.1),
    "momentum": lambda p: nn.SGD(p, lr=0.1, momentum=0.9),
    "adam": lambda p: nn.Adam(p, lr=0.01),
    "lamb": lambda p: nn.LAMB(p, lr=0.01),
}


def build_pair(tables, emb_dim, world, schemes, seed, optimizer="sgd",
               dense_dim=3):
    """One looped and one stacked trainer with identical state."""
    config = DLRMConfig(dense_dim=dense_dim, bottom_mlp=(6, emb_dim),
                        tables=tables, top_mlp=(6,))
    trainers = []
    for stacked in (False, True):
        plan = ShardingPlan(world_size=world)
        for i, t in enumerate(tables):
            scheme = schemes[t.name]
            ranks = [i % world] if scheme == ShardingScheme.TABLE_WISE \
                else list(range(world))
            plan.tables[t.name] = shard_table(t, scheme, ranks)
        plan.validate()
        trainers.append(NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
            dense_optimizer=OPTIMIZERS[optimizer],
            sparse_optimizer=SparseSGD(lr=0.1), seed=seed,
            stacked=stacked))
    return trainers[0], trainers[1]


def assert_bitwise_equal(looped, stacked, tables):
    """Every observable of the two trainers must agree exactly."""
    for r in range(looped.world_size):
        for pa, pb in zip(looped.ranks[r].dense_parameters(),
                          stacked.ranks[r].dense_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
    for t in tables:
        np.testing.assert_array_equal(looped.gather_table(t.name),
                                      stacked.gather_table(t.name))
    assert looped.pg.log.wire_bytes == stacked.pg.log.wire_bytes
    assert looped.pg.log.calls == stacked.pg.log.calls
    assert looped.replicas_in_sync()
    assert stacked.replicas_in_sync()


@st.composite
def stacked_scenario(draw):
    num_tables = draw(st.integers(min_value=1, max_value=3))
    emb_dim = draw(st.sampled_from([4, 8]))
    world = draw(st.sampled_from([2, 4]))
    batch_per_rank = draw(st.integers(min_value=1, max_value=4))
    tables = tuple(
        EmbeddingTableConfig(
            f"t{i}",
            num_embeddings=draw(st.integers(min_value=world * 2,
                                            max_value=64)),
            embedding_dim=emb_dim,
            avg_pooling=float(draw(st.integers(min_value=1, max_value=5))))
        for i in range(num_tables))
    schemes = {t.name: draw(st.sampled_from(SCHEMES)) for t in tables}
    optimizer = draw(st.sampled_from(sorted(OPTIMIZERS)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return tables, emb_dim, world, batch_per_rank, schemes, optimizer, seed


@given(stacked_scenario())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_stacked_bitwise_matches_looped(scenario):
    """Random configs x world sizes x schemes x optimizers: per-step
    losses, all dense params, gathered tables, comms byte/call totals
    and eval outputs are bitwise equal between the two modes."""
    tables, emb_dim, world, batch_per_rank, schemes, optimizer, seed = \
        scenario
    looped, stacked = build_pair(tables, emb_dim, world, schemes, seed,
                                 optimizer=optimizer)
    ds = SyntheticCTRDataset(tables, dense_dim=3, seed=seed)
    for i in range(3):
        split = ds.batch(batch_per_rank * world, i).split(world)
        loss_l = looped.train_step(split)
        loss_s = stacked.train_step(split)
        assert loss_l == loss_s  # exact, not approx
    assert_bitwise_equal(looped, stacked, tables)
    split = ds.batch(batch_per_rank * world, 99).split(world)
    for out_l, out_s in zip(looped.eval_forward(split),
                            stacked.eval_forward(split)):
        np.testing.assert_array_equal(out_l, out_s)


def two_table_setup(world=2, optimizer="sgd", seed=0):
    tables = (EmbeddingTableConfig("t0", 32, 8, avg_pooling=3.0),
              EmbeddingTableConfig("t1", 16, 8, avg_pooling=2.0))
    schemes = {"t0": ShardingScheme.TABLE_WISE,
               "t1": ShardingScheme.DATA_PARALLEL}
    looped, stacked = build_pair(tables, 8, world, schemes, seed,
                                 optimizer=optimizer)
    ds = SyntheticCTRDataset(tables, dense_dim=3, seed=seed)
    return looped, stacked, ds, tables


class TestOptimizerParity:
    """Exact parity for every stateful optimizer, fixed config."""

    @pytest.mark.parametrize("optimizer", sorted(OPTIMIZERS))
    def test_bitwise_parity(self, optimizer):
        looped, stacked, ds, tables = two_table_setup(optimizer=optimizer)
        for i in range(4):
            split = ds.batch(8, i).split(2)
            assert looped.train_step(split) == stacked.train_step(split)
        assert_bitwise_equal(looped, stacked, tables)


class TestOptimizerFacade:
    """Per-rank ``ranks[r].dense_opt`` stays a usable read surface in
    stacked mode — checkpointing and LR schedulers go through it."""

    def test_state_for_slices_rank_state(self):
        _, stacked, ds, _ = two_table_setup(optimizer="momentum")
        stacked.train_step(ds.batch(8, 0).split(2))
        for r in range(2):
            opt = stacked.ranks[r].dense_opt
            for p in stacked.ranks[r].dense_parameters():
                state = opt.state_for(p)
                assert "momentum" in state
                assert state["momentum"].shape == p.data.shape

    def test_rank_states_identical_replicas(self):
        """Dense state is replicated, so every rank's slice agrees."""
        _, stacked, ds, _ = two_table_setup(optimizer="adam")
        stacked.train_step(ds.batch(8, 0).split(2))
        params = [stacked.ranks[r].dense_parameters() for r in range(2)]
        for p0, p1 in zip(*params):
            s0 = stacked.ranks[0].dense_opt.state_for(p0)
            s1 = stacked.ranks[1].dense_opt.state_for(p1)
            assert s0.keys() == s1.keys()
            for key in s0:
                np.testing.assert_array_equal(s0[key], s1[key])

    def test_step_raises(self):
        _, stacked, _, _ = two_table_setup()
        with pytest.raises(RuntimeError):
            stacked.ranks[0].dense_opt.step()

    def test_scheduler_drives_shared_lr(self):
        """A scheduler built on rank 0's facade reaches the shared
        stacked optimizer (and therefore every replica)."""
        _, stacked, ds, _ = two_table_setup()
        sched = nn.StepDecay(stacked.ranks[0].dense_opt, base_lr=0.1,
                             milestones=[1], gamma=0.5)
        sched.step()
        assert stacked.ranks[0].dense_opt.lr == pytest.approx(0.05)
        assert stacked.ranks[1].dense_opt.lr == pytest.approx(0.05)
        stacked.train_step(ds.batch(8, 0).split(2))  # still trains


class TestStackedStateLayout:
    def test_parameters_are_views_of_stacked_storage(self):
        _, stacked, ds, _ = two_table_setup()
        assert stacked.stacked
        sp_list = stacked._stacked_state.dense_parameters()
        for r in range(2):
            for p, sp in zip(stacked.ranks[r].dense_parameters(), sp_list):
                assert sp.stacked
                assert sp.data.shape == (2,) + p.data.shape
                assert np.shares_memory(p.data, sp.data)
        # and the views survive a training step (updates are in-place)
        stacked.train_step(ds.batch(8, 0).split(2))
        for p, sp in zip(stacked.ranks[0].dense_parameters(), sp_list):
            assert np.shares_memory(p.data, sp.data)

    def test_looped_flag_off(self):
        looped, _, _, _ = two_table_setup()
        assert not looped.stacked
        assert looped._stacked_state is None


def test_stacked_smoke_r64():
    """A 64-rank step is affordable in stacked mode (the reason the
    Fig. 11 sweep moved to the fast tier)."""
    tables = (EmbeddingTableConfig("t0", 256, 8, avg_pooling=2.0),)
    config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                        top_mlp=(8,))
    plan = ShardingPlan(world_size=64)
    plan.tables["t0"] = shard_table(tables[0],
                                    ShardingScheme.DATA_PARALLEL,
                                    list(range(64)))
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=8, gpus_per_node=8),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0)
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
    losses = [trainer.train_step(ds.batch(128, i).split(64))
              for i in range(2)]
    assert all(np.isfinite(l) for l in losses)
    assert trainer.replicas_in_sync()

"""Tests for dense optimizers: closed-form single steps and convergence."""

import numpy as np
import pytest

from repro import nn


def make_param(values):
    p = nn.Parameter(np.array(values, dtype=np.float32))
    return p


def set_grad(p, values):
    p.grad = np.array(values, dtype=np.float32)


class TestSGD:
    def test_single_step(self):
        p = make_param([1.0, 2.0])
        opt = nn.SGD([p], lr=0.5)
        set_grad(p, [0.2, -0.4])
        opt.step()
        np.testing.assert_allclose(p.data, [0.9, 2.2], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0, momentum=0.9)
        set_grad(p, [1.0])
        opt.step()  # buf = 1.0, p = -1.0
        set_grad(p, [1.0])
        opt.step()  # buf = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_weight_decay(self):
        p = make_param([2.0])
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        set_grad(p, [0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0], rtol=1e-6)

    def test_skips_params_without_grad(self):
        p = make_param([1.0])
        opt = nn.SGD([p], lr=0.1)
        opt.step()
        np.testing.assert_array_equal(p.data, [1.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([make_param([0.0])], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([make_param([0.0])], lr=0.1, momentum=1.0)

    def test_zero_grad(self):
        p = make_param([1.0])
        opt = nn.SGD([p], lr=0.1)
        set_grad(p, [1.0])
        opt.zero_grad()
        assert p.grad is None


class TestAdaGrad:
    def test_first_step_closed_form(self):
        p = make_param([1.0])
        opt = nn.AdaGrad([p], lr=0.1, eps=0.0)
        set_grad(p, [2.0])
        opt.step()
        # update = lr * g / sqrt(g^2) = lr * sign(g)
        np.testing.assert_allclose(p.data, [0.9], rtol=1e-6)

    def test_accumulator_shrinks_steps(self):
        p = make_param([0.0])
        opt = nn.AdaGrad([p], lr=1.0, eps=0.0)
        deltas = []
        for _ in range(3):
            before = p.data.copy()
            set_grad(p, [1.0])
            opt.step()
            deltas.append(abs(float(p.data[0] - before[0])))
        assert deltas[0] > deltas[1] > deltas[2]
        np.testing.assert_allclose(deltas, [1.0, 1 / np.sqrt(2), 1 / np.sqrt(3)],
                                   rtol=1e-5)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        """With bias correction the first Adam step is ~lr * sign(g)."""
        p = make_param([1.0])
        opt = nn.Adam([p], lr=0.01, eps=0.0)
        set_grad(p, [123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.99], rtol=1e-5)

    def test_state_advances(self):
        p = make_param([0.0])
        opt = nn.Adam([p], lr=0.1)
        for _ in range(3):
            set_grad(p, [1.0])
            opt.step()
        assert int(opt.state_for(p)["t"][0]) == 3


class TestLAMB:
    def test_trust_ratio_scales_update(self):
        """Doubling the weights doubles the LAMB step (fixed direction)."""
        p1 = make_param([1.0, 0.0])
        p2 = make_param([2.0, 0.0])
        opt1 = nn.LAMB([p1], lr=0.1, weight_decay=0.0)
        opt2 = nn.LAMB([p2], lr=0.1, weight_decay=0.0)
        set_grad(p1, [1.0, 0.0])
        set_grad(p2, [1.0, 0.0])
        opt1.step()
        opt2.step()
        step1 = 1.0 - float(p1.data[0])
        step2 = 2.0 - float(p2.data[0])
        assert step2 == pytest.approx(2 * step1, rel=1e-4)

    def test_zero_weight_trust_is_one(self):
        p = make_param([0.0])
        opt = nn.LAMB([p], lr=0.1, weight_decay=0.0)
        set_grad(p, [1.0])
        opt.step()  # must not divide by zero
        assert np.isfinite(p.data).all()


@pytest.mark.parametrize("opt_cls,kwargs", [
    (nn.SGD, {"lr": 0.1}),
    (nn.SGD, {"lr": 0.05, "momentum": 0.9}),
    (nn.AdaGrad, {"lr": 0.5}),
    (nn.Adam, {"lr": 0.05}),
    (nn.LAMB, {"lr": 0.05, "weight_decay": 0.0}),
])
def test_optimizers_minimize_quadratic(opt_cls, kwargs):
    """Every optimizer should drive a convex quadratic toward its minimum."""
    target = np.array([3.0, -2.0], dtype=np.float32)
    p = nn.Parameter(np.zeros(2, dtype=np.float32))
    opt = opt_cls([p], **kwargs)
    for _ in range(300):
        p.grad = (p.data - target).astype(np.float32)
        opt.step()
    assert float(np.linalg.norm(p.data - target)) < 0.3


def test_optimizers_train_xor_mlp():
    """Integration: an MLP + Adam learns XOR, end to end."""
    rng = np.random.default_rng(3)
    mlp = nn.MLP([2, 16, 1], rng=rng)
    loss_fn = nn.BCEWithLogitsLoss()
    opt = nn.Adam(mlp.parameters(), lr=0.05)
    x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float32)
    y = np.array([0, 1, 1, 0], dtype=np.float32)
    for _ in range(1500):
        logits = mlp.forward(x)[:, 0]
        loss_fn.forward(logits, y)
        mlp.zero_grad()
        mlp.backward(loss_fn.backward()[:, None])
        opt.step()
    final = loss_fn.forward(mlp.forward(x)[:, 0], y)
    assert final < 0.1

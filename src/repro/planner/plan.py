"""Plan data model: per-table representation assignments under a budget.

A :class:`RepresentationPlan` is the planner's output contract: one
:class:`TableAssignment` per embedding table naming the representation
(``full`` / ``fp16`` / ``bf16`` / ``int8`` / ``tt`` / ``cold``) with its
*measured* approximation error, modeled per-batch lookup time, and byte
accounting split into HBM-resident ``hot_bytes`` and wherever-they-live
``total_bytes``. Budget semantics follow :func:`repro.serving.export.freeze`:
the ``hot_bytes`` budget covers only arena-resident storage; a ``cold``
table is served exactly (fp32) through the software cache out of DRAM and
contributes zero hot bytes — which is why an empty budget degenerates to
an all-cold plan instead of an infeasibility error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["REPRESENTATION_KINDS", "TableAssignment", "PlanBudget",
           "RepresentationPlan", "PlanError"]

# search space, highest fidelity first; "cold" is exact fp32 behind the
# software cache (zero quality loss, DRAM-link bandwidth cost)
REPRESENTATION_KINDS = ("full", "fp16", "bf16", "int8", "tt", "cold")

# what precision the trainer stores a table at while *training* toward a
# given serving representation (TT/cold train full fp32; the compression
# happens at freeze time)
_TRAINING_PRECISION = {"full": "fp32", "fp16": "fp16", "bf16": "bf16",
                       "int8": "int8", "tt": "fp32", "cold": "fp32"}


class PlanError(ValueError):
    """A budget/floor combination the planner cannot satisfy."""


@dataclass(frozen=True)
class TableAssignment:
    """One table's chosen representation and its measured/modeled costs."""

    table: str
    kind: str                   # one of REPRESENTATION_KINDS
    hot_bytes: int              # HBM-arena-resident bytes (0 for cold)
    total_bytes: int            # stored bytes wherever they live
    error: float                # measured max |W - repr(W)| over elements
    lookup_s: float             # modeled pooled-lookup seconds per batch
    tt_ranks: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in REPRESENTATION_KINDS:
            raise ValueError(
                f"kind must be one of {REPRESENTATION_KINDS}, "
                f"got {self.kind!r}")
        if self.hot_bytes < 0 or self.total_bytes < 0:
            raise ValueError("byte counts must be >= 0")
        if self.error < 0:
            raise ValueError("error must be >= 0")

    @property
    def training_precision(self) -> str:
        """Storage precision :class:`repro.core.NeoTrainer` shards use."""
        return _TRAINING_PRECISION[self.kind]

    def as_dict(self) -> Dict:
        return {"table": self.table, "kind": self.kind,
                "hot_bytes": self.hot_bytes, "total_bytes": self.total_bytes,
                "error": self.error, "lookup_s": self.lookup_s,
                "tt_ranks": list(self.tt_ranks) if self.tt_ranks else None}


@dataclass(frozen=True)
class PlanBudget:
    """What the plan must honor.

    ``hot_bytes`` caps arena-resident embedding storage (hard).
    ``quality_floor`` caps each table's measured element error (hard —
    candidates above it are never considered; ``full`` and ``cold`` are
    exact so a floor alone can never make planning infeasible).
    ``ne_floor`` caps the measured NE gap of the planned export against
    the fp32 export on an eval batch (hard when an eval batch is given).
    ``bandwidth_s`` caps the modeled per-batch embedding lookup time
    (best effort: the plan records ``bandwidth_met`` instead of failing,
    because an empty memory budget may force everything onto the slow
    cold path).
    """

    hot_bytes: float = float("inf")
    bandwidth_s: Optional[float] = None
    quality_floor: Optional[float] = None
    ne_floor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.hot_bytes < 0:
            raise ValueError("hot_bytes must be >= 0")
        if self.bandwidth_s is not None and self.bandwidth_s <= 0:
            raise ValueError("bandwidth_s must be positive")
        if self.quality_floor is not None and self.quality_floor < 0:
            raise ValueError("quality_floor must be >= 0")
        if self.ne_floor is not None and self.ne_floor < 0:
            raise ValueError("ne_floor must be >= 0")


@dataclass
class RepresentationPlan:
    """Per-table representation choices plus the budget they satisfy.

    Consumed by ``freeze(..., plan=...)`` (serving export) and
    ``NeoTrainer(..., representation_plan=...)`` (training shards).
    ``measured_ne_gap`` is filled when the planner had an eval batch to
    measure quality on; ``bandwidth_met`` records whether the best-effort
    bandwidth cap held.
    """

    assignments: Dict[str, TableAssignment]
    budget: PlanBudget = field(default_factory=PlanBudget)
    measured_ne_gap: Optional[float] = None
    bandwidth_met: bool = True
    baseline_hot_bytes: int = 0      # all-full-precision footprint

    # ------------------------------------------------------------------
    def kind_of(self, table: str) -> str:
        return self.assignments[table].kind

    def training_precision(self, table: str) -> str:
        return self.assignments[table].training_precision

    def hot_bytes(self) -> int:
        return sum(a.hot_bytes for a in self.assignments.values())

    def total_bytes(self) -> int:
        return sum(a.total_bytes for a in self.assignments.values())

    def lookup_s(self) -> float:
        return sum(a.lookup_s for a in self.assignments.values())

    def max_error(self) -> float:
        return max((a.error for a in self.assignments.values()), default=0.0)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for a in self.assignments.values():
            counts[a.kind] = counts.get(a.kind, 0) + 1
        return counts

    def memory_saving(self) -> float:
        """Fraction of the all-full hot footprint the plan saves."""
        if self.baseline_hot_bytes <= 0:
            return 0.0
        return 1.0 - self.hot_bytes() / self.baseline_hot_bytes

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`PlanError` if any hard budget term is violated."""
        if self.hot_bytes() > self.budget.hot_bytes:
            raise PlanError(
                f"plan hot bytes {self.hot_bytes()} exceed budget "
                f"{self.budget.hot_bytes}")
        floor = self.budget.quality_floor
        if floor is not None:
            for a in self.assignments.values():
                if a.error > floor:
                    raise PlanError(
                        f"table {a.table!r} error {a.error:.3g} exceeds "
                        f"quality floor {floor:.3g}")
        if (self.budget.ne_floor is not None
                and self.measured_ne_gap is not None
                and self.measured_ne_gap > self.budget.ne_floor):
            raise PlanError(
                f"measured NE gap {self.measured_ne_gap:.4g} exceeds "
                f"floor {self.budget.ne_floor:.4g}")

    def as_dict(self) -> Dict:
        return {
            "assignments": {name: a.as_dict()
                            for name, a in sorted(self.assignments.items())},
            "hot_bytes": self.hot_bytes(),
            "total_bytes": self.total_bytes(),
            "baseline_hot_bytes": self.baseline_hot_bytes,
            "memory_saving": self.memory_saving(),
            "lookup_s": self.lookup_s(),
            "max_error": self.max_error(),
            "measured_ne_gap": self.measured_ne_gap,
            "bandwidth_met": self.bandwidth_met,
            "counts_by_kind": self.counts_by_kind(),
        }

"""The serving subsystem: frozen models on the request path.

Everything upstream of this package trains; this package serves. The
pipeline is freeze -> batch -> serve -> measure:

* :mod:`repro.serving.export` — :func:`freeze` a trained
  :class:`~repro.core.NeoTrainer`/:class:`~repro.models.DLRM` into an
  immutable :class:`ServableModel` (optional fp16/bf16/int8 embedding
  storage, cold tables behind the software cache);
* :mod:`repro.serving.batcher` — deterministic dynamic micro-batching
  (max-batch / max-wait / admission control with load shedding);
* :mod:`repro.serving.server` — :class:`InferenceServer` running real
  forwards with latencies priced by the shared perf/platform models;
* :mod:`repro.serving.loadgen` — seedable open-loop Poisson load and
  p50/p95/p99/goodput SLO reports.

The online-training story of Section 4.1.3 is the motivation: the
recurrent trainer exists to keep a serving fleet fresh, and
``repro.perf.online`` sizes that fleet — this package is the fleet.
"""

from .batcher import (ADMISSION_KINDS, BatchingPolicy, BatchPlan,
                      InferenceRequest, MicroBatcher, MultiTenantBatcher,
                      ScheduledBatch)
from .export import FreezeConfig, ServableModel, freeze
from .loadgen import (ARRIVAL_STREAM, ROUTER_STREAM, USER_STREAM,
                      LoadReport, PoissonLoadGen, requests_from_arrivals,
                      run_load_test)
from .server import (InferenceServer, RequestOutcome, ServeResult,
                     ServingPerfModel)

__all__ = [
    "FreezeConfig",
    "ServableModel",
    "freeze",
    "ADMISSION_KINDS",
    "BatchingPolicy",
    "InferenceRequest",
    "ScheduledBatch",
    "BatchPlan",
    "MicroBatcher",
    "MultiTenantBatcher",
    "ServingPerfModel",
    "InferenceServer",
    "RequestOutcome",
    "ServeResult",
    "PoissonLoadGen",
    "LoadReport",
    "run_load_test",
    "requests_from_arrivals",
    "ARRIVAL_STREAM",
    "USER_STREAM",
    "ROUTER_STREAM",
]

"""Tests for checkpointing: exact resume, differential writes, quantized
storage (Check-N-Run semantics)."""

import os

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import CheckpointManager, NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad, SparseSGD
from repro.models import DLRMConfig
from repro.sharding import ShardingPlan, ShardingScheme, shard_table


def make_trainer(world=2, seed=0, scheme=ShardingScheme.TABLE_WISE,
                 stacked=True, momentum=0.0):
    tables = tuple(EmbeddingTableConfig(f"t{i}", 64, 8, avg_pooling=3.0)
                   for i in range(2))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                        top_mlp=(8,))
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(tables):
        ranks = [i % world] if scheme == ShardingScheme.TABLE_WISE \
            else list(range(world))
        plan.tables[t.name] = shard_table(t, scheme, ranks)
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1, momentum=momentum),
        sparse_optimizer=SparseSGD(lr=0.1), seed=seed, stacked=stacked)
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
    return trainer, ds, config


class TestFullCheckpoint:
    def test_save_creates_file(self, tmp_path):
        trainer, ds, _ = make_trainer()
        mgr = CheckpointManager(str(tmp_path))
        path = mgr.save(trainer)
        assert os.path.exists(path)
        assert mgr.list_steps() == [0]

    def test_round_trip_exact(self, tmp_path):
        trainer, ds, config = make_trainer()
        for i in range(3):
            trainer.train_step(ds.batch(8, i).split(2))
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(trainer)
        saved = {t.name: trainer.gather_table(t.name)
                 for t in config.tables}
        # wreck the state, then restore
        for i in range(3, 6):
            trainer.train_step(ds.batch(8, i).split(2))
        mgr.load(trainer)
        assert trainer.steps == 3
        for t in config.tables:
            np.testing.assert_array_equal(trainer.gather_table(t.name),
                                          saved[t.name])

    def test_resume_equivalence(self, tmp_path):
        """train 6 == train 3, checkpoint, restore into a fresh trainer,
        train 3 more — the checkpoint carries everything needed."""
        straight, ds, config = make_trainer(seed=0)
        for i in range(6):
            straight.train_step(ds.batch(8, i).split(2))

        first, _, _ = make_trainer(seed=0)
        for i in range(3):
            first.train_step(ds.batch(8, i).split(2))
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(first)

        resumed, _, _ = make_trainer(seed=99)  # different init; overwritten
        mgr.load(resumed)
        for i in range(3, 6):
            resumed.train_step(ds.batch(8, i).split(2))
        for t in config.tables:
            np.testing.assert_allclose(resumed.gather_table(t.name),
                                       straight.gather_table(t.name),
                                       rtol=1e-5, atol=1e-7)
        for a, b in zip(resumed.ranks[0].dense_parameters(),
                        straight.ranks[0].dense_parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-5, atol=1e-7)

    def test_load_empty_dir_raises(self, tmp_path):
        trainer, _, _ = make_trainer()
        with pytest.raises(FileNotFoundError):
            CheckpointManager(str(tmp_path)).load(trainer)

    def test_load_missing_step_raises(self, tmp_path):
        trainer, _, _ = make_trainer()
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(trainer)
        with pytest.raises(FileNotFoundError):
            mgr.load(trainer, step=999)

    def test_row_wise_sharded_round_trip(self, tmp_path):
        trainer, ds, config = make_trainer(scheme=ShardingScheme.ROW_WISE)
        trainer.train_step(ds.batch(8, 0).split(2))
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(trainer)
        saved = trainer.gather_table("t0").copy()
        trainer.train_step(ds.batch(8, 1).split(2))
        mgr.load(trainer)
        np.testing.assert_array_equal(trainer.gather_table("t0"), saved)


class TestCrossPlanRestore:
    def test_tw_checkpoint_loads_into_rw_trainer(self, tmp_path):
        """Checkpoints store gathered tables, so a job can restart under
        a *different* sharding plan (resharding on restore — what lets
        operations change the fleet size between runs)."""
        tw_trainer, ds, config = make_trainer(
            scheme=ShardingScheme.TABLE_WISE)
        for i in range(3):
            tw_trainer.train_step(ds.batch(8, i).split(2))
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(tw_trainer)

        rw_trainer, _, _ = make_trainer(scheme=ShardingScheme.ROW_WISE,
                                        seed=77)
        mgr.load(rw_trainer)
        for t in config.tables:
            np.testing.assert_array_equal(rw_trainer.gather_table(t.name),
                                          tw_trainer.gather_table(t.name))
        # and it keeps training under the new plan
        loss = rw_trainer.train_step(ds.batch(8, 99).split(2))
        assert np.isfinite(loss)


class TestCrossFormatResume:
    """The checkpoint format is execution-mode neutral: it stores one
    replica's dense state, so a rank-stacked run and a looped run write
    and read the same files. A stacked-trained checkpoint must resume
    *bitwise* on the looped path (and vice versa) — including stateful
    optimizer buffers."""

    @pytest.mark.parametrize("train_stacked,resume_stacked",
                             [(True, False), (False, True)])
    def test_resume_bitwise_across_modes(self, tmp_path, train_stacked,
                                         resume_stacked):
        # reference: uninterrupted 6-step run in the *training* mode
        straight, ds, config = make_trainer(stacked=train_stacked,
                                            momentum=0.9)
        for i in range(6):
            straight.train_step(ds.batch(8, i).split(2))

        first, _, _ = make_trainer(stacked=train_stacked, momentum=0.9)
        for i in range(3):
            first.train_step(ds.batch(8, i).split(2))
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(first)

        resumed, _, _ = make_trainer(stacked=resume_stacked, momentum=0.9,
                                     seed=99)  # different init; overwritten
        mgr.load(resumed)
        for i in range(3, 6):
            resumed.train_step(ds.batch(8, i).split(2))

        for t in config.tables:
            np.testing.assert_array_equal(resumed.gather_table(t.name),
                                          straight.gather_table(t.name))
        for r in range(2):
            for pa, pb in zip(straight.ranks[r].dense_parameters(),
                              resumed.ranks[r].dense_parameters()):
                np.testing.assert_array_equal(pa.data, pb.data)
        assert resumed.replicas_in_sync()

    def test_restored_momentum_state_matches(self, tmp_path):
        """Optimizer slot state written by a stacked run reads back
        per-rank on the looped path (and agrees exactly)."""
        stacked, ds, _ = make_trainer(stacked=True, momentum=0.9)
        for i in range(2):
            stacked.train_step(ds.batch(8, i).split(2))
        mgr = CheckpointManager(str(tmp_path))
        mgr.save(stacked)
        looped, _, _ = make_trainer(stacked=False, momentum=0.9, seed=99)
        mgr.load(looped)
        for pa, pb in zip(stacked.ranks[0].dense_parameters(),
                          looped.ranks[0].dense_parameters()):
            sa = stacked.ranks[0].dense_opt.state_for(pa)
            sb = looped.ranks[0].dense_opt.state_for(pb)
            assert sa.keys() == sb.keys()
            for key in sa:
                np.testing.assert_array_equal(np.asarray(sa[key]),
                                              np.asarray(sb[key]))


class TestRetention:
    def test_retain_last_prunes_full_checkpoints(self, tmp_path):
        trainer, ds, _ = make_trainer()
        mgr = CheckpointManager(str(tmp_path))
        for i in range(4):
            trainer.train_step(ds.batch(8, i).split(2))
            mgr.save(trainer)
        deleted = mgr.retain_last(2)
        assert deleted == [1, 2]
        assert mgr.list_steps() == [3, 4]
        # newest checkpoint still loads
        mgr.load(trainer)
        assert trainer.steps == 4

    def test_differential_refuses_pruning(self, tmp_path):
        trainer, ds, _ = make_trainer()
        mgr = CheckpointManager(str(tmp_path), differential=True)
        mgr.save(trainer)
        with pytest.raises(ValueError, match="differential"):
            mgr.retain_last(1)

    def test_invalid_keep(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        with pytest.raises(ValueError):
            mgr.retain_last(0)


class TestDifferentialCheckpoint:
    def test_second_checkpoint_writes_only_touched_rows(self, tmp_path):
        trainer, ds, config = make_trainer()
        mgr = CheckpointManager(str(tmp_path), differential=True)
        mgr.save(trainer)  # full
        trainer.train_step(ds.batch(4, 0).split(2))  # touches few rows
        mgr.save(trainer)  # differential
        first, second = mgr.history
        assert not first.differential
        assert second.differential
        assert second.written_rows < first.written_rows
        assert second.write_fraction < 0.6

    def test_differential_chain_restores_exactly(self, tmp_path):
        trainer, ds, config = make_trainer()
        mgr = CheckpointManager(str(tmp_path), differential=True)
        mgr.save(trainer)
        for i in range(4):
            trainer.train_step(ds.batch(8, i).split(2))
            mgr.save(trainer)
        final = {t.name: trainer.gather_table(t.name)
                 for t in config.tables}
        fresh, _, _ = make_trainer(seed=5)
        mgr.load(fresh)
        assert fresh.steps == 4
        for t in config.tables:
            np.testing.assert_array_equal(fresh.gather_table(t.name),
                                          final[t.name])

    def test_restore_intermediate_step(self, tmp_path):
        trainer, ds, config = make_trainer()
        mgr = CheckpointManager(str(tmp_path), differential=True)
        snapshots = {}
        mgr.save(trainer)
        snapshots[0] = trainer.gather_table("t0").copy()
        for i in range(3):
            trainer.train_step(ds.batch(8, i).split(2))
            mgr.save(trainer)
            snapshots[i + 1] = trainer.gather_table("t0").copy()
        fresh, _, _ = make_trainer(seed=5)
        mgr.load(fresh, step=2)
        np.testing.assert_array_equal(fresh.gather_table("t0"),
                                      snapshots[2])


class TestQuantizedCheckpoint:
    def test_fp16_smaller_payload(self, tmp_path):
        t32, ds, _ = make_trainer()
        t16, _, _ = make_trainer()
        m32 = CheckpointManager(str(tmp_path / "fp32"), precision="fp32")
        m16 = CheckpointManager(str(tmp_path / "fp16"), precision="fp16")
        m32.save(t32)
        m16.save(t16)
        assert m16.history[0].payload_bytes < m32.history[0].payload_bytes

    def test_fp16_restore_error_bounded(self, tmp_path):
        trainer, ds, config = make_trainer()
        trainer.train_step(ds.batch(8, 0).split(2))
        exact = trainer.gather_table("t0").copy()
        mgr = CheckpointManager(str(tmp_path), precision="fp16")
        mgr.save(trainer)
        fresh, _, _ = make_trainer(seed=5)
        mgr.load(fresh)
        restored = fresh.gather_table("t0")
        err = np.abs(restored - exact)
        assert np.all(err <= np.abs(exact) * 2 ** -11 + 1e-7)

    def test_invalid_precision(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), precision="int4")

"""Tests for the end-to-end training loop."""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import CheckpointManager, NeoTrainer, TrainingLoop
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
from repro.models import DLRMConfig
from repro.nn import WarmupLinearDecay
from repro.sharding import ShardingPlan, ShardingScheme, shard_table


def make_parts(world=2, seed=0):
    tables = tuple(EmbeddingTableConfig(f"t{i}", 128, 8, avg_pooling=3.0)
                   for i in range(2))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(16, 8), tables=tables,
                        top_mlp=(16,))
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(tables):
        plan.tables[t.name] = shard_table(t, ShardingScheme.TABLE_WISE,
                                          [i % world])
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=seed)
    dataset = SyntheticCTRDataset(tables, dense_dim=4, noise=0.2, seed=1)
    return trainer, dataset


class TestTrainingLoop:
    def test_runs_and_records(self):
        trainer, dataset = make_parts()
        loop = TrainingLoop(trainer, dataset, global_batch_size=32,
                            eval_every=10, eval_batch_size=256)
        result = loop.run(30)
        assert len(result.losses) == 30
        assert result.eval_steps == [10, 20, 30]
        assert len(result.eval_ne) == 3
        assert not result.stopped_early

    def test_learning_improves_ne(self):
        trainer, dataset = make_parts()
        loop = TrainingLoop(trainer, dataset, global_batch_size=64,
                            eval_every=20, eval_batch_size=1024)
        # compare on the SAME held-out batch before and after training
        # (the loop's own cadence uses varying eval batches, which is
        # right for monitoring but noisy for a two-point comparison)
        ne_before = loop.evaluate(batch_index=0)
        result = loop.run(80)
        ne_after = loop.evaluate(batch_index=0)
        assert ne_after < ne_before
        assert result.final_ne < 1.0

    def test_early_stopping(self):
        trainer, dataset = make_parts()
        # zero-signal labels: NE can't improve, patience triggers
        loop = TrainingLoop(trainer, dataset, global_batch_size=32,
                            eval_every=2, eval_batch_size=64, patience=2)
        result = loop.run(100)
        # either stopped early or finished; with patience 2 on a noisy
        # small eval it stops long before 100
        assert result.stopped_early
        assert len(result.losses) < 100

    def test_checkpoints_written(self, tmp_path):
        trainer, dataset = make_parts()
        mgr = CheckpointManager(str(tmp_path))
        loop = TrainingLoop(trainer, dataset, global_batch_size=32,
                            eval_every=50, checkpoint_manager=mgr,
                            checkpoint_every=5)
        result = loop.run(12)
        assert len(result.checkpoints) == 2
        assert mgr.list_steps() == [5, 10]

    def test_lr_scheduler_advances(self):
        trainer, dataset = make_parts()
        opt = trainer.ranks[0].dense_opt
        sched = WarmupLinearDecay(opt, base_lr=0.02, warmup_steps=5,
                                  total_steps=20)
        loop = TrainingLoop(trainer, dataset, global_batch_size=32,
                            eval_every=100, lr_schedulers=[sched])
        loop.run(5)
        assert opt.lr == pytest.approx(0.02)

    def test_validation(self):
        trainer, dataset = make_parts()
        with pytest.raises(ValueError):
            TrainingLoop(trainer, dataset, global_batch_size=32,
                         eval_every=0)
        with pytest.raises(ValueError):
            TrainingLoop(trainer, dataset, global_batch_size=32,
                         checkpoint_every=-1)
        with pytest.raises(ValueError):
            TrainingLoop(trainer, dataset, global_batch_size=32, patience=0)

    def test_result_properties_empty(self):
        from repro.core import TrainingResult
        r = TrainingResult()
        assert r.final_ne is None
        assert r.best_ne is None

"""DDP-style gradient bucketing (paper Section 4.5, ref [29]).

PyTorch DDP does not AllReduce each parameter's gradient separately: it
packs gradients into fixed-size buckets (25 MB by default) and launches
one AllReduce per bucket as soon as the bucket's gradients are ready —
amortizing the per-collective alpha cost and enabling the
backward/AllReduce overlap that Fig. 12 shows hiding the AllReduce.

:class:`GradientBucketer` reproduces the packing half: a deterministic
assignment of parameters to buckets (reverse parameter order, matching
DDP's "gradients become ready in roughly reverse order" heuristic), plus
exact flatten/unflatten so the bucketed AllReduce is numerically
identical to per-parameter AllReduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..nn.parameter import Parameter

__all__ = ["Bucket", "GradientBucketer"]


@dataclass(frozen=True)
class Bucket:
    """One bucket: indices into the parameter list, in packing order."""

    param_indices: tuple
    num_elements: int

    @property
    def num_bytes(self) -> int:
        return self.num_elements * 4


class GradientBucketer:
    """Packs per-parameter gradients into flat buckets and back.

    Parameters
    ----------
    params:
        The (ordered) dense parameter list of one replica. All replicas
        must use the same order — guaranteed in this codebase because
        replicas are built identically.
    bucket_bytes:
        Target bucket size. DDP's default is 25 MB; small models end up
        with a single bucket.
    """

    def __init__(self, params: Sequence[Parameter],
                 bucket_bytes: int = 25 * 2 ** 20) -> None:
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self.shapes = [p.data.shape for p in params]
        self.sizes = [int(p.data.size) for p in params]
        cap_elements = max(1, bucket_bytes // 4)
        buckets: List[Bucket] = []
        current: List[int] = []
        current_elems = 0
        # reverse order: DDP packs by readiness, which is ~reverse of the
        # forward registration order
        for idx in reversed(range(len(params))):
            if current and current_elems + self.sizes[idx] > cap_elements:
                buckets.append(Bucket(tuple(current), current_elems))
                current, current_elems = [], 0
            current.append(idx)
            current_elems += self.sizes[idx]
        if current:
            buckets.append(Bucket(tuple(current), current_elems))
        self.buckets = buckets

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def flatten(self, grads: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Pack per-parameter gradients into one flat array per bucket."""
        if len(grads) != len(self.shapes):
            raise ValueError(
                f"expected {len(self.shapes)} gradients, got {len(grads)}")
        out = []
        for bucket in self.buckets:
            flat = np.empty(bucket.num_elements, dtype=np.float32)
            cursor = 0
            for idx in bucket.param_indices:
                g = grads[idx]
                if g.shape != self.shapes[idx]:
                    raise ValueError(
                        f"gradient {idx} has shape {g.shape}, expected "
                        f"{self.shapes[idx]}")
                flat[cursor:cursor + self.sizes[idx]] = g.ravel()
                cursor += self.sizes[idx]
            out.append(flat)
        return out

    def flatten_stacked(self, grads: Sequence[np.ndarray]
                        ) -> List[np.ndarray]:
        """Rank-stacked :meth:`flatten`: per-parameter ``(R, *shape)``
        gradients pack into one ``(R, bucket_elements)`` flat per
        bucket. Row ``r`` of each flat is bitwise what :meth:`flatten`
        would produce from rank ``r``'s gradients."""
        if len(grads) != len(self.shapes):
            raise ValueError(
                f"expected {len(self.shapes)} gradients, got {len(grads)}")
        world = int(grads[0].shape[0])
        out = []
        for bucket in self.buckets:
            flat = np.empty((world, bucket.num_elements), dtype=np.float32)
            cursor = 0
            for idx in bucket.param_indices:
                g = grads[idx]
                if g.shape != (world,) + self.shapes[idx]:
                    raise ValueError(
                        f"stacked gradient {idx} has shape {g.shape}, "
                        f"expected {(world,) + self.shapes[idx]}")
                flat[:, cursor:cursor + self.sizes[idx]] = \
                    g.reshape(world, -1)
                cursor += self.sizes[idx]
            out.append(flat)
        return out

    def unflatten_stacked(self, flats: Sequence[np.ndarray]
                          ) -> List[np.ndarray]:
        """Inverse of :meth:`flatten_stacked`: ``(R, bucket_elements)``
        flats back to per-parameter ``(R, *shape)`` gradients."""
        if len(flats) != len(self.buckets):
            raise ValueError(
                f"expected {len(self.buckets)} buckets, got {len(flats)}")
        grads: List[np.ndarray] = [None] * len(self.shapes)
        for bucket, flat in zip(self.buckets, flats):
            world = int(flat.shape[0])
            if flat.shape[1:] != (bucket.num_elements,):
                raise ValueError(
                    f"bucket expects {bucket.num_elements} elements, got "
                    f"{flat.shape[1:]}")
            cursor = 0
            for idx in bucket.param_indices:
                size = self.sizes[idx]
                grads[idx] = flat[:, cursor:cursor + size].reshape(
                    (world,) + self.shapes[idx]).astype(np.float32)
                cursor += size
        return grads

    def unflatten(self, flats: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Inverse of :meth:`flatten`; returns per-parameter gradients in
        the original parameter order."""
        if len(flats) != len(self.buckets):
            raise ValueError(
                f"expected {len(self.buckets)} buckets, got {len(flats)}")
        grads: List[np.ndarray] = [None] * len(self.shapes)
        for bucket, flat in zip(self.buckets, flats):
            if flat.size != bucket.num_elements:
                raise ValueError(
                    f"bucket expects {bucket.num_elements} elements, got "
                    f"{flat.size}")
            cursor = 0
            for idx in bucket.param_indices:
                size = self.sizes[idx]
                grads[idx] = flat[cursor:cursor + size].reshape(
                    self.shapes[idx]).astype(np.float32)
                cursor += size
        return grads

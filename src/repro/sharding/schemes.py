"""Embedding sharding schemes and shard plans (paper Section 4.2, Fig. 8).

Four primitives, applicable per table:

* **table-wise (TW)** — whole table on one rank; cheapest communication
  (plain AlltoAll of pooled outputs) but coarse-grained balance.
* **row-wise (RW)** — rows split across ranks; needs input bucketization
  and a ReduceScatter of partial pools; balance scales to huge tables.
* **column-wise (CW)** — embedding dim split across ranks; keeps the
  AlltoAll flow but duplicates input indices to every shard.
* **data-parallel (DP)** — table replicated on all ranks like a dense
  parameter; no forward comms, AllReduce of gradients instead.

plus the hierarchical **table-wise-then-row-wise (TWRW)** composition that
assigns a table to a node and splits rows among that node's local ranks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..embedding.table import EmbeddingTableConfig

__all__ = ["ShardingScheme", "Shard", "TableShardingPlan", "ShardingPlan",
           "shard_table"]


class ShardingScheme(enum.Enum):
    """The sharding primitives of Fig. 8 plus the hierarchical TWRW."""

    TABLE_WISE = "table_wise"
    ROW_WISE = "row_wise"
    COLUMN_WISE = "column_wise"
    DATA_PARALLEL = "data_parallel"
    TABLE_ROW_WISE = "table_row_wise"


@dataclass(frozen=True)
class Shard:
    """One placed fragment of an embedding table.

    ``row_range``/``col_range`` are half-open ``[start, stop)`` intervals
    over the table's rows/columns. A data-parallel "shard" covers the whole
    table and exists once per rank.
    """

    table: str
    rank: int
    row_range: tuple
    col_range: tuple

    def __post_init__(self) -> None:
        for lo, hi in (self.row_range, self.col_range):
            if lo < 0 or hi <= lo:
                raise ValueError(f"invalid shard interval [{lo}, {hi})")
        if self.rank < 0:
            raise ValueError(f"invalid rank {self.rank}")

    @property
    def num_rows(self) -> int:
        return self.row_range[1] - self.row_range[0]

    @property
    def num_cols(self) -> int:
        return self.col_range[1] - self.col_range[0]

    @property
    def num_parameters(self) -> int:
        return self.num_rows * self.num_cols


@dataclass
class TableShardingPlan:
    """Scheme plus placed shards for a single table."""

    config: EmbeddingTableConfig
    scheme: ShardingScheme
    shards: List[Shard] = field(default_factory=list)

    def validate(self) -> None:
        """Check the shards tile the table exactly (no gap, no overlap)."""
        h, d = self.config.num_embeddings, self.config.embedding_dim
        if self.scheme == ShardingScheme.DATA_PARALLEL:
            ranks = [s.rank for s in self.shards]
            if len(set(ranks)) != len(ranks):
                raise ValueError(f"{self.config.name}: duplicate DP replicas")
            for s in self.shards:
                if s.row_range != (0, h) or s.col_range != (0, d):
                    raise ValueError(
                        f"{self.config.name}: DP shard must cover the table")
            return
        covered = 0
        seen = set()
        for s in self.shards:
            key = (s.row_range, s.col_range)
            if key in seen:
                raise ValueError(f"{self.config.name}: duplicate shard {key}")
            seen.add(key)
            if s.row_range[1] > h or s.col_range[1] > d:
                raise ValueError(
                    f"{self.config.name}: shard {key} exceeds table ({h},{d})")
            covered += s.num_parameters
        if covered != h * d:
            raise ValueError(
                f"{self.config.name}: shards cover {covered} of {h * d} "
                f"parameters")
        # intervals must also not overlap; with rectangular grid shards the
        # parameter-count check above catches overlap iff total area matches
        # and each cell is covered. Verify row/col interval consistency:
        row_cuts = sorted({s.row_range for s in self.shards})
        col_cuts = sorted({s.col_range for s in self.shards})
        expected = len(row_cuts) * len(col_cuts)
        if self.scheme in (ShardingScheme.ROW_WISE,
                           ShardingScheme.TABLE_ROW_WISE):
            if len(col_cuts) != 1:
                raise ValueError(
                    f"{self.config.name}: row-wise plan must not split cols")
        if self.scheme == ShardingScheme.COLUMN_WISE and len(row_cuts) != 1:
            raise ValueError(
                f"{self.config.name}: column-wise plan must not split rows")
        if self.scheme == ShardingScheme.TABLE_WISE and len(self.shards) != 1:
            raise ValueError(
                f"{self.config.name}: table-wise plan must be one shard")
        if expected != len(self.shards) and self.scheme not in (
                ShardingScheme.TABLE_WISE,):
            raise ValueError(
                f"{self.config.name}: shards do not form a grid")


@dataclass
class ShardingPlan:
    """Complete plan: one :class:`TableShardingPlan` per table."""

    tables: Dict[str, TableShardingPlan] = field(default_factory=dict)
    world_size: int = 1

    def validate(self) -> None:
        for plan in self.tables.values():
            plan.validate()
            for s in plan.shards:
                if s.rank >= self.world_size:
                    raise ValueError(
                        f"{s.table}: rank {s.rank} outside world "
                        f"size {self.world_size}")

    def shards_on_rank(self, rank: int) -> List[Shard]:
        return [s for plan in self.tables.values() for s in plan.shards
                if s.rank == rank]

    def scheme_of(self, table: str) -> ShardingScheme:
        return self.tables[table].scheme

    def memory_per_rank(self, bytes_per_element: int = 4) -> List[int]:
        usage = [0] * self.world_size
        for plan in self.tables.values():
            for s in plan.shards:
                usage[s.rank] += s.num_parameters * bytes_per_element
        return usage


def _split_interval(total: int, parts: int) -> List[tuple]:
    """Split ``[0, total)`` into ``parts`` near-equal contiguous intervals.

    Earlier parts get the remainder, matching how frameworks split
    rows/columns. Parts beyond ``total`` would be empty and are dropped.
    """
    parts = min(parts, total)
    base = total // parts
    remainder = total % parts
    intervals = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < remainder else 0)
        intervals.append((start, start + size))
        start += size
    return intervals


def shard_table(config: EmbeddingTableConfig, scheme: ShardingScheme,
                ranks: Sequence[int]) -> TableShardingPlan:
    """Cut one table into shards for ``ranks`` under ``scheme``.

    For TW the first rank gets the whole table. For RW/CW the rows/columns
    are split near-equally over all given ranks. For DP every rank gets a
    replica. TWRW is expressed by calling this with the node-local ranks.
    """
    h, d = config.num_embeddings, config.embedding_dim
    if not ranks:
        raise ValueError("need at least one rank")
    if scheme == ShardingScheme.TABLE_WISE:
        shards = [Shard(config.name, ranks[0], (0, h), (0, d))]
    elif scheme in (ShardingScheme.ROW_WISE, ShardingScheme.TABLE_ROW_WISE):
        intervals = _split_interval(h, len(ranks))
        shards = [Shard(config.name, rank, interval, (0, d))
                  for rank, interval in zip(ranks, intervals)]
    elif scheme == ShardingScheme.COLUMN_WISE:
        intervals = _split_interval(d, len(ranks))
        shards = [Shard(config.name, rank, (0, h), interval)
                  for rank, interval in zip(ranks, intervals)]
    elif scheme == ShardingScheme.DATA_PARALLEL:
        shards = [Shard(config.name, rank, (0, h), (0, d)) for rank in ranks]
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown scheme {scheme}")
    plan = TableShardingPlan(config=config, scheme=scheme, shards=shards)
    plan.validate()
    return plan

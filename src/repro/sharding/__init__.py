"""Hybrid embedding-table sharding: schemes, cost model, placement
algorithms and the planner (paper Section 4.2)."""

from .autotune import AutotuneResult, autotune_schemes, legal_schemes
from .cost_model import CostModelParams, ShardCost, shard_cost, table_cost
from .partitioners import (Assignment, greedy_partition, ldm_partition,
                           partition_quality, round_robin_partition)
from .memory_validation import (RankMemoryReport, plan_memory_report,
                                validate_plan_memory)
from .plan_io import load_plan, plan_from_dict, plan_to_dict, save_plan
from .planner import EmbeddingShardingPlanner, PlannerConfig, plan_cost_per_rank
from .schemes import (Shard, ShardingPlan, ShardingScheme, TableShardingPlan,
                      shard_table)

__all__ = [
    "ShardingScheme",
    "Shard",
    "TableShardingPlan",
    "ShardingPlan",
    "shard_table",
    "CostModelParams",
    "ShardCost",
    "shard_cost",
    "table_cost",
    "Assignment",
    "greedy_partition",
    "ldm_partition",
    "round_robin_partition",
    "partition_quality",
    "PlannerConfig",
    "EmbeddingShardingPlanner",
    "plan_cost_per_rank",
    "AutotuneResult",
    "autotune_schemes",
    "legal_schemes",
    "RankMemoryReport",
    "plan_memory_report",
    "validate_plan_memory",
    "plan_to_dict",
    "plan_from_dict",
    "save_plan",
    "load_plan",
]

"""Inference-server tests: real forwards behind the batcher, modeled time.

Served responses must equal direct single-request predictions exactly
(batching is a scheduling decision, never a numerics decision), the
perf model must price batches sensibly (amortized overhead, hierarchy
slowdown when the model spills HBM), and the obs wiring must account
for every request.
"""

import numpy as np
import pytest

from repro.obs import MetricRegistry, Tracer
from repro.perf import PlatformSpec
from repro.serving import (BatchingPolicy, InferenceServer,
                           ServingPerfModel)

from .helpers import tiny_system


class TestServe:
    def test_responses_match_unbatched_predict(self):
        sys = tiny_system()
        requests = sys.requests(20)
        server = InferenceServer(sys.servable,
                                 BatchingPolicy(max_batch_size=8,
                                                max_wait_s=1e-3))
        result = server.serve(requests)
        assert result.num_completed == 20
        # coalesced forward == per-request forward up to BLAS kernel
        # selection (matmul blocking differs by batch shape, so bitwise
        # equality across batch sizes is not guaranteed)
        for r in requests:
            np.testing.assert_allclose(result.responses[r.request_id],
                                       sys.servable.predict(r.batch),
                                       rtol=1e-6, atol=1e-6)

    def test_outcomes_sorted_and_accounted(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        result = server.serve(sys.requests(12))
        ids = [o.request_id for o in result.outcomes]
        assert ids == sorted(ids) == list(range(12))
        for o in result.outcomes:
            assert o.completion_s > o.dispatch_s >= o.arrival_s
            assert o.latency_s > 0

    def test_shed_requests_have_no_response(self):
        sys = tiny_system()
        requests = sys.requests(10, spacing_s=0.0)
        server = InferenceServer(
            sys.servable, BatchingPolicy(max_batch_size=2, max_wait_s=10.0,
                                         max_queue_depth=2),
            ServingPerfModel(overhead_s=1.0))  # huge service time
        result = server.serve(requests)
        assert result.num_shed > 0
        assert result.num_completed + result.num_shed == 10
        for rid in result.shed_ids:
            assert rid not in result.responses

    def test_metrics_and_spans_recorded(self):
        sys = tiny_system()
        registry = MetricRegistry()
        tracer = Tracer(clock="logical")
        server = InferenceServer(sys.servable, tracer=tracer,
                                 metrics=registry)
        server.serve(sys.requests(8))
        snap = registry.snapshot()
        assert snap["serving.requests"] == 8
        assert snap["serving.completed"] == 8
        assert snap["serving.shed"] == 0
        assert snap["serving.samples"] == 8
        assert snap["serving.batches"] >= 1
        names = {e.name for e in tracer.trace.closed_events()}
        assert {"serving.batch", "serving.forward"} <= names

    def test_deterministic_replay(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        a = server.serve(sys.requests(15))
        b = server.serve(sys.requests(15))
        assert [o.completion_s for o in a.outcomes] == \
            [o.completion_s for o in b.outcomes]


class TestServingPerfModel:
    def test_batched_amortizes_overhead(self):
        model = tiny_system().servable
        perf = ServingPerfModel()
        t1 = perf.service_time(model, 1, 10)
        t64 = perf.service_time(model, 64, 640)
        assert t64 < 64 * t1  # batching must be cheaper than 64 singles
        assert t64 > t1       # but not free

    def test_capacity_grows_with_batch(self):
        model = tiny_system().servable
        perf = ServingPerfModel()
        q1 = perf.capacity_qps(model, 1, 10.0)
        q64 = perf.capacity_qps(model, 64, 10.0)
        assert q64 > 2 * q1

    def test_hbm_overflow_degrades_bandwidth(self):
        model = tiny_system().servable
        tiny = PlatformSpec(name="tiny",
                            hbm_per_node_bytes=model.storage_bytes() / 4,
                            dram_per_node_bytes=1e12,
                            hbm_bw_per_node=850e9, dram_link_bw_per_node=12e9)
        fits = ServingPerfModel()
        spills = ServingPerfModel(platform=tiny)
        assert fits.bw_fraction(model) == 1.0
        assert spills.bw_fraction(model) < 1.0
        assert spills.service_time(model, 32, 320) > \
            fits.service_time(model, 32, 320)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingPerfModel(nodes=0)
        with pytest.raises(ValueError):
            ServingPerfModel(overhead_s=-1.0)
        model = tiny_system().servable
        perf = ServingPerfModel()
        with pytest.raises(ValueError):
            perf.service_time(model, 0, 1)
        with pytest.raises(ValueError):
            perf.service_time(model, 1, -1)

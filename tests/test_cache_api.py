"""Conformance suite for the unified ``RowCache`` API.

Every cache kind registered in :data:`repro.cache.CACHE_KINDS` runs
through the same read/write/flush/eviction/stats assertions, so a new
policy cannot drift from the protocol the consumers
(``CachedEmbeddingTable``, ``serving.export``, the benchmarks) type
against. The headline property is exactness: reads through any cache are
bitwise-identical to an uncached backing-store read (hypothesis-fuzzed
for the frequency-aware chunked cache, including interleaved writes).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (CACHE_KINDS, ArrayBackingStore, CacheStats,
                         CachedEmbeddingTable, FreqAwareCache,
                         PrefetchPipeline, RowCache, SetAssociativeCache,
                         make_cache)
from repro.data import (DataIngestionService, FrequencyStats,
                        SyntheticCTRDataset)
from repro.embedding import EmbeddingTableConfig
from repro.models import DLRM
from repro.obs import Tracer
from repro.serving import FreezeConfig, freeze

from .helpers import tiny_config, tiny_dataset

H, D = 200, 8


def make_backing(seed=0, h=H, d=D):
    rng = np.random.default_rng(seed)
    return ArrayBackingStore(rng.normal(size=(h, d)).astype(np.float32))


@pytest.fixture(params=CACHE_KINDS)
def kind(request):
    return request.param


def build(kind, capacity_rows=64, d=D):
    return make_cache(kind, row_dim=d, capacity_rows=capacity_rows)


class TestConformance:
    def test_satisfies_protocol(self, kind):
        assert isinstance(build(kind), RowCache)

    def test_capacity_rows(self, kind):
        cache = build(kind, capacity_rows=64)
        # kinds may round down to their granularity, never exceed
        assert 1 <= cache.capacity_rows <= 64

    def test_read_returns_backing_values(self, kind):
        cache, backing = build(kind), make_backing()
        ids = np.array([1, 17, 33, 1, 199], dtype=np.int64)
        np.testing.assert_array_equal(cache.read(ids, backing),
                                      backing.rows[ids])

    def test_miss_then_hit(self, kind):
        cache, backing = build(kind), make_backing()
        cache.read(np.array([3]), backing)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        assert cache.stats.fills >= 1
        cache.read(np.array([3]), backing)
        assert cache.stats.hits == 1
        assert cache.stats.accesses == 2

    def test_write_then_read(self, kind):
        cache, backing = build(kind), make_backing()
        new = np.full((1, D), 9.0, dtype=np.float32)
        cache.write(np.array([7]), new, backing)
        np.testing.assert_array_equal(cache.read(np.array([7]), backing),
                                      new)

    def test_flush_persists_writes(self, kind):
        cache, backing = build(kind), make_backing()
        vals = np.arange(2 * D, dtype=np.float32).reshape(2, D)
        cache.write(np.array([2, 90]), vals, backing)
        assert cache.flush(backing) > 0
        np.testing.assert_array_equal(backing.rows[2], vals[0])
        np.testing.assert_array_equal(backing.rows[90], vals[1])
        assert cache.flush(backing) == 0  # idempotent

    def test_eviction_under_pressure_stays_exact(self, kind):
        cache, backing = build(kind, capacity_rows=8), make_backing()
        rng = np.random.default_rng(1)
        for _ in range(30):
            ids = rng.integers(0, H, size=16)
            np.testing.assert_array_equal(cache.read(ids, backing),
                                          backing.rows[ids])
        assert cache.stats.evictions > 0

    def test_contains(self, kind):
        cache, backing = build(kind), make_backing()
        assert not cache.contains(5)
        cache.read(np.array([5]), backing)
        assert cache.contains(5)

    def test_prefetch_turns_misses_into_hits(self, kind):
        cache, backing = build(kind), make_backing()
        # ids within one UVM page so every kind can hold all of them
        ids = np.array([3, 17, 42], dtype=np.int64)
        staged = cache.prefetch_rows(ids, backing)
        assert staged > 0
        assert cache.stats.prefetched_rows >= len(ids)
        assert cache.stats.misses == 0  # prefetches are not demand misses
        out = cache.read(ids, backing)
        assert cache.stats.misses == 0 and cache.stats.hits == len(ids)
        np.testing.assert_array_equal(out, backing.rows[ids])

    def test_reset_stats_clears_every_counter(self, kind):
        cache, backing = build(kind, capacity_rows=8), make_backing()
        rng = np.random.default_rng(2)
        for _ in range(10):
            cache.write(rng.integers(0, H, size=4),
                        np.ones((4, D), dtype=np.float32), backing)
            cache.read(rng.integers(0, H, size=8), backing)
        cache.prefetch_rows(np.array([150]), backing)
        assert cache.stats.fills > 0
        cache.reset_stats()
        assert cache.stats == CacheStats()

    def test_shared_stats_dataclass(self, kind):
        # one CacheStats for every implementation — the drift fix
        assert type(build(kind).stats) is CacheStats


class TestUVMStatsDriftFix:
    def test_pages_migrated_cannot_drift_from_reset(self):
        cache, backing = build("uvm"), make_backing()
        cache.read(np.array([0, 100]), backing)
        assert cache.pages_migrated == cache.stats.fills > 0
        cache.reset_stats()
        assert cache.pages_migrated == 0  # alias, not a second counter


class TestMakeCache:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_cache("direct_mapped", row_dim=4, capacity_rows=8)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_cache("freq_aware", row_dim=0, capacity_rows=8)
        with pytest.raises(ValueError):
            make_cache("uvm", row_dim=4, capacity_rows=0)

    def test_kind_specific_config(self):
        cache = make_cache("set_associative", row_dim=4, capacity_rows=64,
                           ways=4, policy="lfu")
        assert cache.ways == 4 and cache.policy == "lfu"
        cache = make_cache("freq_aware", row_dim=4, capacity_rows=64,
                           chunk_rows=16)
        assert cache.chunk_rows == 16

    def test_cached_table_accepts_kind_name(self):
        cfg = EmbeddingTableConfig("t", H, D)
        table = CachedEmbeddingTable(
            cfg, "freq_aware", rng=np.random.default_rng(0),
            cache_config={"capacity_rows": 32})
        assert isinstance(table.cache, FreqAwareCache)
        indices = np.array([1, 5, 9, 1], dtype=np.int64)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        out = table.forward(indices, offsets)
        assert out.shape == (2, D)
        with pytest.raises(ValueError):
            CachedEmbeddingTable(cfg, "freq_aware")  # no capacity


class TestRemovedShims:
    """The pre-protocol constructor shims were removed after their
    deprecation window — the old keywords now raise ``TypeError``."""

    def test_num_sets_constructor_removed(self):
        with pytest.raises(TypeError):
            SetAssociativeCache(num_sets=4, row_dim=D, ways=2)

    def test_canonical_form_does_not_warn(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SetAssociativeCache(capacity_rows=8, row_dim=D, ways=2)

    def test_freeze_config_cache_rows_fraction_removed(self):
        with pytest.raises(TypeError):
            FreezeConfig(cache_rows_fraction=0.5)

    def test_freeze_config_cache_ways_removed(self):
        with pytest.raises(TypeError):
            FreezeConfig(cache_ways=8)

    def test_freeze_config_validates_kind(self):
        with pytest.raises(ValueError):
            FreezeConfig(cache_kind="direct_mapped")


class TestFreqAwareCache:
    def test_warm_packs_hottest_rows(self):
        cache = FreqAwareCache(capacity_rows=32, row_dim=D, chunk_rows=8)
        backing = make_backing()
        hist = np.zeros(H, dtype=np.int64)
        hist[:40] = np.arange(40, 0, -1)  # ids 0..39, hottest first
        assert cache.warm(hist, backing) == 32
        assert all(cache.contains(i) for i in range(32))
        assert not cache.contains(33)

    def test_warm_rejects_bad_histogram(self):
        cache = FreqAwareCache(capacity_rows=32, row_dim=D)
        with pytest.raises(ValueError):
            cache.warm(np.zeros(H - 1), make_backing())

    def test_warmed_scores_outlive_reactive_admissions(self):
        """A frequency-ranked hot chunk survives one-touch traffic."""
        cache = FreqAwareCache(capacity_rows=16, row_dim=D, chunk_rows=8)
        backing = make_backing()
        hist = np.zeros(H, dtype=np.int64)
        hist[:8] = 100
        cache.warm(hist, backing)
        # stream of cold one-touch ids fills and churns the other chunk
        for i in range(50, 90):
            cache.read(np.array([i]), backing)
        assert all(cache.contains(i) for i in range(8))

    def test_chunk_eviction_writes_back_dirty_rows(self):
        cache = FreqAwareCache(capacity_rows=4, row_dim=D, chunk_rows=4)
        backing = make_backing()
        new = np.full((1, D), 5.0, dtype=np.float32)
        cache.write(np.array([0]), new, backing)
        for i in range(1, 9):  # churn past capacity: chunk 0 evicted
            cache.read(np.array([i]), backing)
        np.testing.assert_array_equal(backing.rows[0], new[0])
        assert cache.stats.writebacks >= 1

    def test_beats_set_associative_on_zipf(self):
        """The tentpole claim, in miniature: with the hot set known in
        advance, the warmed chunked cache out-hits reactive LRU."""
        from repro.data import zipf_indices
        h, capacity = 4096, 256
        backing_fa = make_backing(seed=2, h=h)
        backing_sa = make_backing(seed=2, h=h)
        rng = np.random.default_rng(3)
        trace = [zipf_indices(h, 512, rng, alpha=1.1) for _ in range(20)]
        hist = np.bincount(np.concatenate(trace[:5]), minlength=h)
        fa = make_cache("freq_aware", row_dim=D, capacity_rows=capacity)
        fa.warm(hist, backing_fa)
        fa.reset_stats()
        sa = make_cache("set_associative", row_dim=D,
                        capacity_rows=capacity)
        for ids in trace[5:]:
            np.testing.assert_array_equal(fa.read(ids, backing_fa),
                                          backing_fa.rows[ids])
            sa.read(ids, backing_sa)
        assert fa.stats.hit_rate > sa.stats.hit_rate

    @given(st.lists(st.integers(min_value=0, max_value=H - 1),
                    min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_fuzz_bitwise_identical_to_uncached(self, trace):
        """Reads through FreqAwareCache == uncached backing reads,
        bitwise, under interleaved writes, eviction and prefetch."""
        cache = FreqAwareCache(capacity_rows=16, row_dim=D, chunk_rows=4)
        backing = make_backing(seed=1)
        shadow = backing.rows.copy()
        rng = np.random.default_rng(0)
        for i, row in enumerate(trace):
            if i % 5 == 4:
                cache.prefetch_rows(np.array([row]), backing)
            elif i % 3 == 2:
                val = rng.normal(size=(1, D)).astype(np.float32)
                cache.write(np.array([row]), val, backing)
                shadow[row] = val[0]
            else:
                out = cache.read(np.array([row]), backing)
                np.testing.assert_array_equal(out[0], shadow[row])
        cache.flush(backing)
        np.testing.assert_array_equal(backing.rows, shadow)


class TestPrefetchPipeline:
    def test_stage_hides_under_compute(self):
        cache = make_cache("freq_aware", row_dim=D, capacity_rows=64)
        backing = make_backing()
        pipe = PrefetchPipeline(cache, backing, tracer=Tracer())
        staged = pipe.stage(np.array([1, 2, 3]), compute_s=10.0)
        assert staged == 3
        report = pipe.overlap_report()
        assert report["rows_staged"] == 3
        assert report["bytes_staged"] == 3 * backing.row_bytes
        assert report["exposed_s"] == pytest.approx(0.0)
        assert report["hidden_frac"] == pytest.approx(1.0)

    def test_no_compute_window_is_fully_exposed(self):
        cache = make_cache("set_associative", row_dim=D, capacity_rows=64)
        pipe = PrefetchPipeline(cache, make_backing())
        pipe.stage(np.array([1, 2, 3]))
        report = pipe.overlap_report()
        assert report["hidden_s"] == 0.0
        assert report["exposed_s"] == report["prefetch_s"] > 0.0

    def test_emits_cache_prefetch_spans(self):
        tracer = Tracer()
        cache = make_cache("freq_aware", row_dim=D, capacity_rows=64)
        pipe = PrefetchPipeline(cache, make_backing(), tracer=tracer)
        pipe.stage(np.array([1, 2, 3]), compute_s=1.0)
        spans = tracer.trace.find("cache.prefetch")
        assert len(spans) == 1
        assert spans[0].args["staged"] == 3


class TestFrequencyStats:
    def test_ingestion_tracks_frequencies(self):
        config = tiny_config()
        ds = tiny_dataset(config)
        service = DataIngestionService(ds, world_size=2,
                                      global_batch_size=32,
                                      track_frequencies=True)
        for _ in range(3):
            service.next_batch()
        stats = service.frequency_stats
        assert stats.batches_observed >= 3
        assert set(stats.tables) == {t.name for t in config.tables}
        name = config.tables[0].name
        hist = stats.histogram(name, config.tables[0].num_embeddings)
        assert hist.sum() == stats.total(name) > 0

    def test_merge_across_readers(self):
        a, b = FrequencyStats(), FrequencyStats()
        a.update_ids("t", np.array([1, 1, 2]))
        b.update_ids("t", np.array([2, 3]))
        a.merge(b)
        np.testing.assert_array_equal(a.histogram("t", 4), [0, 2, 2, 1])

    def test_top_ids_and_coverage(self):
        stats = FrequencyStats()
        stats.update_ids("t", np.array([5, 5, 5, 2, 2, 9]))
        np.testing.assert_array_equal(stats.top_ids("t", 2), [5, 2])
        assert stats.coverage("t", [5, 2]) == pytest.approx(5 / 6)
        assert stats.coverage("missing", [1]) == 0.0

    def test_histogram_rejects_out_of_range(self):
        stats = FrequencyStats()
        stats.update_ids("t", np.array([10]))
        with pytest.raises(ValueError):
            stats.histogram("t", 5)


class TestFreezeFreqAware:
    def test_freq_aware_cold_serving_is_bitwise_exact(self):
        config = tiny_config()
        model = DLRM(config, seed=4)
        ds = tiny_dataset(config)
        service = DataIngestionService(ds, world_size=1,
                                      global_batch_size=32,
                                      track_frequencies=True)
        for _ in range(4):
            service.next_batch()
        servable = freeze(
            model, FreezeConfig(hot_bytes=0.0, cache_kind="freq_aware"),
            frequency_stats=service.frequency_stats)
        batch = ds.batch(32, 50)
        np.testing.assert_array_equal(servable.forward(batch),
                                      model.forward(batch))
        # the warm pre-packed rows and they are paying off
        for name in servable.cold_table_names:
            cache = servable.cold_tables[name].cache
            assert cache.warmed_rows > 0
            assert cache.stats.hits > 0

    def test_frequency_aware_packing_prefers_hot_tables(self):
        config = tiny_config(num_tables=2)
        model = DLRM(config, seed=0)
        names = [t.name for t in config.tables]
        stats = FrequencyStats()
        stats.update_ids(names[1], np.arange(50) % 7)  # table 1 is hot
        table_bytes = config.tables[0].num_parameters * 4
        servable = freeze(model, FreezeConfig(hot_bytes=float(table_bytes)),
                          frequency_stats=stats)
        assert servable.hot_table_names == [names[1]]
        assert servable.cold_table_names == [names[0]]

"""Multi-tier memory hierarchy model: HBM + DDR + SSD (Section 4.1.3).

ZionEX exposes three memory tiers per node; the faster tier acts as a
software cache for the next. This module provides

* :class:`MemoryTier` / :class:`MemoryHierarchy` — capacity/bandwidth
  bookkeeping used by the capacity studies (can a model fit? at what
  effective bandwidth given a hit-rate profile?), and
* :class:`CachedEmbeddingTable` — a functional embedding table whose rows
  live in a backing store and are accessed through a software cache,
  wiring :mod:`repro.cache` into the training path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..embedding.kernels import expand_bag_ids, segment_sum
from ..embedding.table import EmbeddingTableConfig, SparseGradient
from ..obs.tracer import as_tracer
from .api import make_cache
from .backing import ArrayBackingStore

__all__ = ["MemoryTier", "MemoryHierarchy", "CachedEmbeddingTable",
           "ZIONEX_NODE_HIERARCHY"]


@dataclass(frozen=True)
class MemoryTier:
    """One memory tier with capacity and sustained bandwidth."""

    name: str
    capacity_bytes: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError(f"capacity and bandwidth must be positive: {self}")


class MemoryHierarchy:
    """Ordered tiers, fastest first (e.g. HBM, DDR, SSD)."""

    def __init__(self, tiers: Sequence[MemoryTier]) -> None:
        if not tiers:
            raise ValueError("need at least one tier")
        bandwidths = [t.bandwidth_bytes_per_s for t in tiers]
        if bandwidths != sorted(bandwidths, reverse=True):
            raise ValueError("tiers must be ordered fastest first")
        self.tiers = list(tiers)

    @property
    def total_capacity_bytes(self) -> float:
        return sum(t.capacity_bytes for t in self.tiers)

    def fits(self, model_bytes: float) -> bool:
        return model_bytes <= self.total_capacity_bytes

    def placement(self, model_bytes: float) -> List[float]:
        """Greedy waterfall placement: fill fast tiers first.

        Returns bytes placed per tier; raises if the model does not fit.
        """
        if not self.fits(model_bytes):
            raise ValueError(
                f"model of {model_bytes:.3g} B exceeds hierarchy capacity "
                f"{self.total_capacity_bytes:.3g} B")
        remaining = model_bytes
        placed = []
        for tier in self.tiers:
            take = min(remaining, tier.capacity_bytes)
            placed.append(take)
            remaining -= take
        return placed

    def effective_bandwidth(self, hit_fractions: Sequence[float]) -> float:
        """Harmonic-mean bandwidth for an access stream.

        ``hit_fractions[i]`` is the fraction of accessed bytes served by
        tier ``i``; they must sum to 1. This is the standard memory-system
        average: time per byte is the hit-weighted sum of per-tier times.
        """
        if len(hit_fractions) != len(self.tiers):
            raise ValueError("need one hit fraction per tier")
        total = float(sum(hit_fractions))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"hit fractions must sum to 1, got {total}")
        time_per_byte = sum(f / t.bandwidth_bytes_per_s
                            for f, t in zip(hit_fractions, self.tiers))
        return 1.0 / time_per_byte


def ZIONEX_NODE_HIERARCHY() -> MemoryHierarchy:
    """Per-node hierarchy from Table 2: 256 GB HBM @7.2 TB/s, 1.5 TB DDR
    @200 GB/s, plus a 4 TB NVMe tier @ ~6 GB/s (typical for the platform)."""
    return MemoryHierarchy([
        MemoryTier("hbm", 256e9, 7.2e12),
        MemoryTier("ddr", 1.5e12, 200e9),
        MemoryTier("ssd", 4e12, 6e9),
    ])


class CachedEmbeddingTable:
    """Embedding table whose canonical rows live behind a software cache.

    Functionally equivalent to :class:`repro.embedding.EmbeddingTable`
    (same forward/backward contract) but every row access is routed
    through any :class:`repro.cache.RowCache` in front of an
    :class:`ArrayBackingStore`. ``cache`` is either a constructed cache
    or a kind name from :data:`repro.cache.CACHE_KINDS` (built via
    :func:`repro.cache.make_cache` with ``cache_config`` as the extra
    knobs — ``capacity_rows`` required there when a kind is named).
    Used to validate cache coherence under training and to measure
    traffic.

    Pass ``tracer=``/``registry=`` (or call :meth:`instrument`) to record
    ``cache.lookup``/``cache.update``/``cache.prefetch`` spans and
    publish the cache's stats as ``cache.*`` counters after each access.
    Instrumentation is read-only.
    """

    def __init__(self, config: EmbeddingTableConfig, cache,
                 rng: Optional[np.random.Generator] = None,
                 weight: Optional[np.ndarray] = None,
                 tracer=None, registry=None,
                 cache_config: Optional[dict] = None) -> None:
        self.config = config
        if isinstance(cache, str):
            cfg = dict(cache_config or {})
            if "capacity_rows" not in cfg:
                raise ValueError(
                    "cache_config must supply capacity_rows when cache "
                    "is a kind name")
            cache = make_cache(cache, row_dim=config.embedding_dim, **cfg)
        elif cache_config is not None:
            raise ValueError(
                "cache_config is only valid when cache is a kind name")
        rng = rng if rng is not None else np.random.default_rng(0)
        if weight is None:
            limit = 1.0 / np.sqrt(config.num_embeddings)
            weight = rng.uniform(
                -limit, limit,
                size=(config.num_embeddings, config.embedding_dim))
        self.backing = ArrayBackingStore(np.asarray(weight, dtype=np.float32))
        self.cache = cache
        self._saved: Optional[tuple] = None
        self.tracer = as_tracer(tracer)
        self._scope = registry.scope("cache") if registry is not None else None
        self._published = {}

    def instrument(self, tracer=None, registry=None) -> None:
        """Attach a tracer and/or metric registry after construction."""
        if tracer is not None:
            self.tracer = as_tracer(tracer)
        if registry is not None:
            self._scope = registry.scope("cache")
            self._published = {}

    def _sync_stats(self) -> None:
        """Publish the cache's cumulative stats as counter deltas."""
        if self._scope is None:
            return
        stats = getattr(self.cache, "stats", None)
        if stats is None:
            return
        for field in ("hits", "misses", "evictions", "writebacks",
                      "fills", "prefetched_rows"):
            value = int(getattr(stats, field, 0))
            prev = self._published.get(field, 0)
            if value > prev:
                self._scope.counter(field, table=self.name).inc(value - prev)
                self._published[field] = value

    @property
    def name(self) -> str:
        return self.config.name

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.diff(offsets)
        with self.tracer.span("cache.lookup", cat="cache", table=self.name,
                              rows=int(len(indices))):
            rows = self.cache.read(indices, self.backing) if len(indices) \
                else np.zeros((0, self.config.embedding_dim),
                              dtype=np.float32)
        self._sync_stats()
        out = segment_sum(rows, offsets)
        if self.config.pooling_mode == "mean":
            out /= np.maximum(lengths, 1).astype(np.float32)[:, None]
        self._saved = (indices, None, lengths)
        return out

    def prefetch(self, indices: np.ndarray) -> int:
        """Stage the rows a future batch will touch (pipelined with the
        current batch's compute); returns rows newly made resident."""
        indices = np.asarray(indices, dtype=np.int64)
        with self.tracer.span("cache.prefetch", cat="cache", table=self.name,
                              rows=int(len(indices))):
            staged = self.cache.prefetch_rows(indices, self.backing) \
                if len(indices) else 0
        self._sync_stats()
        return staged

    def backward(self, dy: np.ndarray) -> SparseGradient:
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        indices, bag_ids, lengths = self._saved
        if bag_ids is None:
            bag_ids = expand_bag_ids(lengths)
            self._saved = (indices, bag_ids, lengths)
        grad_rows = dy[bag_ids].astype(np.float32)
        if self.config.pooling_mode == "mean":
            denom = np.maximum(lengths, 1).astype(np.float32)
            grad_rows = grad_rows / denom[bag_ids][:, None]
        return SparseGradient(rows=indices, values=grad_rows,
                              num_embeddings=self.config.num_embeddings)

    def sgd_step(self, grad: SparseGradient, lr: float) -> None:
        """Exact merged SGD applied through the cache (read-modify-write)."""
        from ..embedding.optim import merge_duplicate_rows
        rows, merged = merge_duplicate_rows(grad.rows, grad.values)
        if len(rows) == 0:
            return
        with self.tracer.span("cache.update", cat="cache", table=self.name,
                              rows=int(len(rows))):
            current = self.cache.read(rows, self.backing)
            self.cache.write(rows, current - lr * merged, self.backing)
        self._sync_stats()

    def checkpoint(self) -> np.ndarray:
        """Flush the cache and return the canonical table contents."""
        self.cache.flush(self.backing)
        return self.backing.rows.copy()

"""Report-merge golden tests and the fleet summary structures.

:meth:`LoadReport.merge` is the statistical backbone of every fleet
number, so it is tested against a *hand-computed* two-replica fixture:
pooled percentiles, completion-weighted batch width, cross-replica
makespan and attainment are all written out longhand and compared
field by field. The sweep helpers are tested with stub serve functions
so their normalization (efficiency anchored at N=1) is checked in
isolation from any actual serving.
"""

import pytest

from repro.fleet import (CapacityPoint, FleetDayReport, ScaleEvent,
                         WindowRecord, capacity_sweep, overload_sweep)
from repro.serving import LoadReport


def make_report(samples, num_offered, num_shed=0, slo_s=0.03,
                offered_qps=10.0, first_arrival_s=0.0,
                last_completion_s=1.0, mean_batch_samples=1.0,
                goodput_qps=0.0):
    """A self-consistent LoadReport over explicit latency samples."""
    lat = sorted(samples)
    n = len(lat)

    def pct(q):
        if not lat:
            return 0.0
        rank = (n - 1) * q / 100.0
        lo = int(rank)
        frac = rank - lo
        hi = min(lo + 1, n - 1)
        return lat[lo] + frac * (lat[hi] - lat[lo])

    makespan = last_completion_s - first_arrival_s if n else 0.0
    within = sum(1 for v in lat if v <= slo_s)
    return LoadReport(
        offered_qps=offered_qps, num_offered=num_offered,
        num_completed=n, num_shed=num_shed, slo_s=slo_s,
        p50_s=pct(50), p95_s=pct(95), p99_s=pct(99),
        mean_s=sum(lat) / n if n else 0.0, max_s=max(lat) if n else 0.0,
        goodput_qps=goodput_qps or (within / makespan if makespan else 0.0),
        completed_qps=n / makespan if makespan else 0.0,
        slo_attainment=within / num_offered if num_offered else 0.0,
        makespan_s=makespan, mean_batch_samples=mean_batch_samples,
        first_arrival_s=first_arrival_s, last_completion_s=last_completion_s,
        samples_s=tuple(samples))


class TestMergeGolden:
    """Two replicas, every merged field computed by hand."""

    def fixture(self):
        a = make_report((0.010, 0.020, 0.030), num_offered=4, num_shed=1,
                        offered_qps=40.0, first_arrival_s=0.0,
                        last_completion_s=0.05, mean_batch_samples=1.5)
        b = make_report((0.040,), num_offered=1, offered_qps=10.0,
                        first_arrival_s=0.10, last_completion_s=0.20,
                        mean_batch_samples=2.0)
        return a, b

    def test_hand_computed_fields(self):
        merged = LoadReport.merge(self.fixture())
        # pooled samples (0.01, 0.02, 0.03, 0.04), linear interpolation:
        #   p50 at rank 1.5 -> 0.025; p95 at 2.85 -> 0.0385;
        #   p99 at 2.97 -> 0.0397
        assert merged.samples_s == (0.010, 0.020, 0.030, 0.040)
        assert merged.p50_s == pytest.approx(0.025, rel=1e-12)
        assert merged.p95_s == pytest.approx(0.0385, rel=1e-12)
        assert merged.p99_s == pytest.approx(0.0397, rel=1e-12)
        assert merged.mean_s == pytest.approx(0.025, rel=1e-12)
        assert merged.max_s == 0.040
        # counts and rates sum
        assert merged.num_offered == 5
        assert merged.num_completed == 4
        assert merged.num_shed == 1
        assert merged.shed_fraction == pytest.approx(0.2)
        assert merged.offered_qps == pytest.approx(50.0)
        # makespan spans earliest arrival (0.0) to latest completion
        # (0.20) across replicas
        assert merged.makespan_s == pytest.approx(0.20, rel=1e-12)
        assert merged.first_arrival_s == 0.0
        assert merged.last_completion_s == 0.20
        # 3 of 4 completions inside the 0.03 SLO, 3 of 5 offered
        assert merged.goodput_qps == pytest.approx(3 / 0.20, rel=1e-12)
        assert merged.completed_qps == pytest.approx(4 / 0.20, rel=1e-12)
        assert merged.slo_attainment == pytest.approx(0.6, rel=1e-12)
        # completion-weighted batch width: (1.5*3 + 2.0*1) / 4
        assert merged.mean_batch_samples == pytest.approx(1.625, rel=1e-12)
        assert merged.slo_s == 0.03

    def test_merge_order_invariant_statistics(self):
        a, b = self.fixture()
        ab, ba = LoadReport.merge([a, b]), LoadReport.merge([b, a])
        assert ab.p99_s == ba.p99_s
        assert ab.goodput_qps == ba.goodput_qps
        assert ab.makespan_s == ba.makespan_s
        assert sorted(ab.samples_s) == sorted(ba.samples_s)

    def test_single_report_merges_verbatim(self):
        a, _ = self.fixture()
        assert LoadReport.merge([a]) == a

    def test_empty_contributor_changes_nothing_but_offered(self):
        a, _ = self.fixture()
        empty = make_report((), num_offered=2, num_shed=2,
                            offered_qps=5.0, last_completion_s=0.0)
        merged = LoadReport.merge([a, empty])
        # statistics come from the sole active contributor, verbatim
        assert merged.p99_s == a.p99_s
        assert merged.makespan_s == a.makespan_s
        assert merged.mean_batch_samples == a.mean_batch_samples
        assert merged.num_offered == 6
        assert merged.num_shed == 3


class TestMergeValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LoadReport.merge([])

    def test_rejects_mixed_slos(self):
        a = make_report((0.01,), num_offered=1, slo_s=0.03)
        b = make_report((0.01,), num_offered=1, slo_s=0.05)
        with pytest.raises(ValueError):
            LoadReport.merge([a, b])

    def test_rejects_sample_free_reports(self):
        a = make_report((0.01,), num_offered=1)
        with pytest.raises(ValueError):
            LoadReport.merge([a, a.without_samples()])

    def test_rejects_inconsistent_sample_counts(self):
        from dataclasses import replace
        a = make_report((0.01, 0.02), num_offered=2)
        with pytest.raises(ValueError):
            LoadReport.merge([replace(a, num_completed=3)])

    def test_without_samples_drops_only_samples(self):
        a = make_report((0.01, 0.02), num_offered=2)
        bare = a.without_samples()
        assert bare.samples_s is None
        assert bare.p99_s == a.p99_s
        assert bare.num_completed == a.num_completed


def day_report():
    windows = [
        WindowRecord(index=0, start_s=0.0, num_offered=10, num_completed=10,
                     num_shed=0, p99_s=0.01, shed_fraction=0.0,
                     active_replicas=1, billed_replicas=1),
        WindowRecord(index=1, start_s=2.0, num_offered=40, num_completed=35,
                     num_shed=5, p99_s=0.09, shed_fraction=0.125,
                     active_replicas=1, billed_replicas=2),
        WindowRecord(index=2, start_s=4.0, num_offered=40, num_completed=40,
                     num_shed=0, p99_s=0.04, shed_fraction=0.0,
                     active_replicas=2, billed_replicas=2),
    ]
    events = [ScaleEvent(t_s=2.0, delta=1, replicas_after=2, reason="p99"),
              ScaleEvent(t_s=6.0, delta=-1, replicas_after=1, reason="idle")]
    merged = make_report((0.01, 0.04), num_offered=90, slo_s=0.05)
    return FleetDayReport(windows=windows, events=events, merged=merged,
                          replica_seconds=10.0, slo_s=0.05, warmup_s=0.5)


class TestFleetDayReport:
    def test_aggregates(self):
        report = day_report()
        assert report.replica_hours == pytest.approx(10.0 / 3600.0)
        assert report.peak_replicas == 2
        assert report.trough_replicas == 1
        assert report.num_scale_ups() == 1
        assert report.num_scale_downs() == 1
        assert report.slo_held  # merged p99 0.04 <= slo 0.05

    def test_render_tabulates_every_window(self):
        report = day_report()
        text = report.render()
        assert "billed" in text and "p99 ms" in text
        assert len(report.rows()) == 3
        assert len(report.rows()[0]) == len(FleetDayReport.ROW_HEADER)


class TestSweeps:
    def test_capacity_sweep_normalizes_against_n1(self):
        calls = []

        def serve_at(n):
            calls.append(n)
            # goodput: 100 at N=1, then sublinear growth
            return make_report(tuple(0.01 for _ in range(n)),
                               num_offered=n, goodput_qps=100.0 * n * 0.9
                               if n > 1 else 100.0)

        points = capacity_sweep(serve_at, replica_counts=[4, 2],
                                per_replica_qps=50.0)
        assert calls == [1, 2, 4]  # N=1 anchor prepended, counts sorted
        assert [p.replicas for p in points] == [1, 2, 4]
        assert points[0].efficiency == pytest.approx(1.0)
        assert points[1].efficiency == pytest.approx(0.9)
        assert points[2].efficiency == pytest.approx(0.9)
        assert points[2].offered_qps == pytest.approx(200.0)
        assert len(points[0].row()) == len(CapacityPoint.ROW_HEADER)

    def test_overload_sweep_passes_scales_through_in_order(self):
        seen = []

        def serve_scaled(s):
            seen.append(s)
            return make_report((0.01,), num_offered=1)

        reports = overload_sweep(serve_scaled, scales=[0.5, 1.0, 2.0])
        assert seen == [0.5, 1.0, 2.0]
        assert len(reports) == 3

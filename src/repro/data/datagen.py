"""Synthetic CTR training data with planted structure.

The paper trains on petabytes of production click logs, which we cannot
ship. We substitute a generator that preserves what the training system
actually exercises:

* **jagged multi-hot categorical features** — per-table pooling sizes are
  Poisson-distributed around the table's configured ``L`` (Fig. 7 notes L
  varies per table and per sample);
* **skewed id popularity** — ids follow a Zipf distribution, giving the
  cache experiments realistic hot/cold row sets;
* **learnable labels** — a planted logistic "teacher" over per-id effects
  and dense features, so normalized-entropy curves (Fig. 10) measure real
  learning, not noise-fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..embedding.table import EmbeddingTableConfig, lengths_to_offsets
from ..nn import functional as F

__all__ = ["MiniBatch", "SyntheticCTRDataset", "zipf_indices"]


def zipf_indices(num_ids: int, size: int, rng: np.random.Generator,
                 alpha: float = 1.05) -> np.ndarray:
    """Zipf-distributed ids in ``[0, num_ids)`` (rejection-free, via
    inverse-CDF on the truncated power law)."""
    if num_ids <= 0:
        raise ValueError("num_ids must be positive")
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    ranks = np.arange(1, num_ids + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(size)
    return np.searchsorted(cdf, u).astype(np.int64)


@dataclass
class MiniBatch:
    """One batch of samples: dense features, jagged sparse ids, labels."""

    dense: np.ndarray                     # (B, dense_dim) float32
    sparse: Dict[str, Tuple[np.ndarray, np.ndarray]]  # name -> (ids, offsets)
    labels: np.ndarray                    # (B,) float32 in {0, 1}

    @property
    def batch_size(self) -> int:
        return self.dense.shape[0]

    def slice(self, start: int, stop: int) -> "MiniBatch":
        """Extract samples ``[start, stop)`` with rebased offsets."""
        sparse = {}
        for name, (indices, offsets) in self.sparse.items():
            lo, hi = offsets[start], offsets[stop]
            sparse[name] = (indices[lo:hi].copy(),
                            (offsets[start:stop + 1] - lo).copy())
        return MiniBatch(dense=self.dense[start:stop].copy(), sparse=sparse,
                         labels=self.labels[start:stop].copy())

    def split(self, parts: int) -> List["MiniBatch"]:
        """Split into ``parts`` contiguous sub-batches (data parallelism)."""
        if self.batch_size % parts:
            raise ValueError(
                f"batch size {self.batch_size} not divisible by {parts}")
        step = self.batch_size // parts
        return [self.slice(i * step, (i + 1) * step) for i in range(parts)]

    @staticmethod
    def concat(batches: Sequence["MiniBatch"]) -> "MiniBatch":
        """Coalesce batches (inverse of :meth:`split`): samples in order,
        jagged ids concatenated with offsets rebased. All batches must
        cover the same sparse features. This is the serving batcher's
        merge step."""
        if not batches:
            raise ValueError("need at least one batch")
        names = set(batches[0].sparse)
        for b in batches[1:]:
            if set(b.sparse) != names:
                raise ValueError(
                    f"sparse feature mismatch: {sorted(names)} vs "
                    f"{sorted(b.sparse)}")
        sparse = {}
        for name in batches[0].sparse:
            ids = np.concatenate([b.sparse[name][0] for b in batches])
            lengths = np.concatenate(
                [np.diff(b.sparse[name][1]) for b in batches])
            sparse[name] = (ids, lengths_to_offsets(lengths))
        return MiniBatch(
            dense=np.concatenate([b.dense for b in batches], axis=0),
            sparse=sparse,
            labels=np.concatenate([b.labels for b in batches]))


class SyntheticCTRDataset:
    """Reproducible stream of :class:`MiniBatch` with a planted teacher.

    Parameters
    ----------
    tables:
        The embedding-table configs; ``avg_pooling`` controls the Poisson
        mean of per-sample pooling sizes.
    dense_dim:
        Width of the dense (continuous) feature vector.
    noise:
        Stddev of logit noise; larger means a higher irreducible NE.
    zipf_alpha:
        Popularity skew of categorical ids.
    """

    def __init__(self, tables: Sequence[EmbeddingTableConfig],
                 dense_dim: int = 8, noise: float = 0.25,
                 zipf_alpha: float = 1.05, seed: int = 0) -> None:
        if not tables:
            raise ValueError("need at least one table")
        if dense_dim <= 0:
            raise ValueError("dense_dim must be positive")
        self.tables = list(tables)
        self.dense_dim = dense_dim
        self.noise = noise
        self.zipf_alpha = zipf_alpha
        self.seed = seed
        teacher_rng = np.random.default_rng(seed)
        # planted per-id effects and dense weights
        self._id_effects = {
            t.name: teacher_rng.normal(
                0.0, 1.0, size=t.num_embeddings).astype(np.float32)
            for t in tables}
        self._dense_weights = teacher_rng.normal(
            0.0, 1.0, size=dense_dim).astype(np.float32)
        self._bias = float(teacher_rng.normal(0.0, 0.1))

    def batch(self, batch_size: int, batch_index: int = 0) -> MiniBatch:
        """Generate batch ``batch_index`` deterministically."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = np.random.default_rng((self.seed, batch_index))
        dense = rng.normal(size=(batch_size, self.dense_dim)).astype(
            np.float32)
        logits = dense @ self._dense_weights + self._bias
        sparse = {}
        for t in self.tables:
            lengths = rng.poisson(max(t.avg_pooling, 1e-9),
                                  size=batch_size).astype(np.int64)
            indices = zipf_indices(t.num_embeddings, int(lengths.sum()),
                                   rng, alpha=self.zipf_alpha)
            offsets = lengths_to_offsets(lengths)
            sparse[t.name] = (indices, offsets)
            effects = self._id_effects[t.name]
            bag_sums = np.zeros(batch_size, dtype=np.float32)
            bag_ids = np.repeat(np.arange(batch_size), lengths)
            if len(indices):
                np.add.at(bag_sums, bag_ids, effects[indices])
            # mean effect per bag keeps logit scale independent of L
            logits += bag_sums / np.maximum(lengths, 1)
        logits += rng.normal(0.0, self.noise, size=batch_size)
        labels = (rng.random(batch_size) < F.sigmoid(
            logits.astype(np.float32))).astype(np.float32)
        return MiniBatch(dense=dense, sparse=sparse, labels=labels)

    def batches(self, batch_size: int, num_batches: int,
                start: int = 0) -> List[MiniBatch]:
        return [self.batch(batch_size, start + i) for i in range(num_batches)]

    def base_rate(self, sample_size: int = 4096) -> float:
        """Empirical positive rate, for normalized-entropy denominators."""
        b = self.batch(sample_size, batch_index=-1 & 0x7FFFFFFF)
        return float(np.mean(b.labels))

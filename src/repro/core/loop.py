"""End-to-end training loop: data ingestion -> trainer -> metrics ->
checkpoints (the "overall training system" of Fig. 6).

Wires the disaggregated pieces into the production-shaped loop: the
reader service prefetches global batches, the Neo trainer consumes them
synchronously, normalized entropy is evaluated on held-out batches at a
fixed cadence, and the checkpoint manager snapshots at its own cadence —
frequent enough to bound lost work (the Check-N-Run requirement).

When a :class:`repro.resilience.RecoveryManager` is attached, the loop
also survives rank failures: a :class:`repro.resilience.RankFailure`
raised out of a collective triggers restore-from-checkpoint onto a
replacement (or degraded) world, the ingestion service seeks back to
the restored batch index, bookkeeping (losses, eval history, early-stop
counters, LR schedulers) is rewound to match, and training resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


from ..data.datagen import SyntheticCTRDataset
from ..data.reader import DataIngestionService
from ..metrics import normalized_entropy
from ..resilience import RankFailure, RecoveryError, RecoveryEvent, \
    RecoveryManager
from .checkpoint import CheckpointManager
from .trainer import NeoTrainer

__all__ = ["TrainingResult", "TrainingLoop"]


@dataclass
class TrainingResult:
    """Everything a training run produced."""

    losses: List[float] = field(default_factory=list)
    eval_steps: List[int] = field(default_factory=list)
    eval_ne: List[float] = field(default_factory=list)
    checkpoints: List[str] = field(default_factory=list)
    stopped_early: bool = False
    recoveries: List[RecoveryEvent] = field(default_factory=list)

    @property
    def final_ne(self) -> Optional[float]:
        return self.eval_ne[-1] if self.eval_ne else None

    @property
    def best_ne(self) -> Optional[float]:
        return min(self.eval_ne) if self.eval_ne else None


class TrainingLoop:
    """Drives a :class:`NeoTrainer` with ingestion, eval and checkpoints.

    Parameters
    ----------
    trainer:
        The distributed trainer (owns the model and optimizers).
    dataset:
        The batch source; training and eval batches come from disjoint
        index ranges so evaluation is held out.
    global_batch_size:
        Samples per synchronous iteration, split across the ranks.
    eval_every / eval_batch_size:
        Normalized-entropy evaluation cadence.
    checkpoint_manager / checkpoint_every:
        Optional checkpointing.
    patience:
        Early stopping: stop if NE fails to improve for this many
        consecutive evaluations (None disables).
    recovery:
        Optional :class:`repro.resilience.RecoveryManager`. When set,
        a :class:`repro.resilience.RankFailure` during training is
        survived by restoring the newest checkpoint; without it the
        failure propagates.
    """

    EVAL_OFFSET = 1_000_000  # eval batch indices live far from training's

    def __init__(self, trainer: NeoTrainer, dataset: SyntheticCTRDataset,
                 global_batch_size: int, eval_every: int = 50,
                 eval_batch_size: int = 2048,
                 checkpoint_manager: Optional[CheckpointManager] = None,
                 checkpoint_every: int = 0,
                 patience: Optional[int] = None,
                 lr_schedulers: Optional[list] = None,
                 recovery: Optional[RecoveryManager] = None) -> None:
        if eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive when set")
        self.trainer = trainer
        self.global_batch_size = global_batch_size
        self.ingestion = DataIngestionService(
            dataset, world_size=trainer.world_size,
            global_batch_size=global_batch_size)
        self.dataset = dataset
        self.eval_every = eval_every
        self.eval_batch_size = eval_batch_size
        self.checkpoint_manager = checkpoint_manager
        self.checkpoint_every = checkpoint_every
        self.patience = patience
        self.lr_schedulers = list(lr_schedulers or [])
        self.recovery = recovery

    def evaluate(self, batch_index: int = 0) -> float:
        """Held-out normalized entropy of the current model."""
        model = self.trainer.to_local_model()
        batch = self.dataset.batch(self.eval_batch_size,
                                   self.EVAL_OFFSET + batch_index)
        return normalized_entropy(model.predict_proba(batch), batch.labels)

    def run(self, num_steps: int,
            on_step: Optional[Callable[[int], None]] = None
            ) -> TrainingResult:
        """Train for ``num_steps`` iterations.

        ``on_step``, if given, is called with the 0-based step index
        after each completed iteration (post train/eval/checkpoint
        bookkeeping) — the hook the online co-simulation uses to freeze
        and hot-swap snapshots at its refresh cadence. Under recovery,
        replayed steps fire the hook again, mirroring what a restarted
        production loop would do.
        """
        result = TrainingResult()
        self._best = float("inf")
        self._since_best = 0
        step = 0
        while step < num_steps:
            tracer = self.trainer.tracer
            try:
                with tracer.span("loop.iteration", cat="loop", step=step):
                    stop = self._one_step(step, result)
            except RankFailure as failure:
                if self.recovery is None:
                    raise
                step = self._recover(failure, result)
                continue
            if on_step is not None:
                on_step(step)
            if stop:
                result.stopped_early = True
                break
            step += 1
        return result

    def _one_step(self, step: int, result: TrainingResult) -> bool:
        """One train/eval/checkpoint iteration; True means stop early."""
        tracer = self.trainer.tracer
        with tracer.span("loop.ingest", cat="loop"):
            shards = self.ingestion.next_batch()
        result.losses.append(self.trainer.train_step(shards))
        for scheduler in self.lr_schedulers:
            scheduler.step()
        if (step + 1) % self.eval_every == 0:
            with tracer.span("loop.eval", cat="loop"):
                ne = self.evaluate(batch_index=step)
            result.eval_steps.append(step + 1)
            result.eval_ne.append(ne)
            if ne < self._best - 1e-6:
                self._best = ne
                self._since_best = 0
            else:
                self._since_best += 1
            if self.patience is not None and \
                    self._since_best >= self.patience:
                return True
        if self.checkpoint_manager is not None and \
                self.checkpoint_every and \
                (step + 1) % self.checkpoint_every == 0:
            with tracer.span("loop.checkpoint", cat="loop"):
                result.checkpoints.append(
                    self.checkpoint_manager.save(self.trainer))
        return False

    def _recover(self, failure: RankFailure,
                 result: TrainingResult) -> int:
        """Rebuild the trainer after a rank failure; returns resume step.

        Restores from the newest checkpoint via the recovery manager,
        rewinds every piece of loop state to the restored step — loss
        history, eval history, early-stop counters, the ingestion
        cursor, LR schedulers — and swaps in the new trainer. Steps
        between the checkpoint and the failure are recomputed on replay.
        """
        with self.trainer.tracer.span("loop.recover", cat="loop",
                                      failed_rank=failure.rank):
            event = self.recovery.recover(
                failure, current_world=self.trainer.world_size)
        self.trainer = event.trainer
        restored = event.restored_step
        # rewind bookkeeping: losses/evals past the restored step will be
        # recomputed on replay
        del result.losses[restored:]
        keep = sum(1 for s in result.eval_steps if s <= restored)
        del result.eval_steps[keep:]
        del result.eval_ne[keep:]
        self._best = float("inf")
        self._since_best = 0
        for ne in result.eval_ne:
            if ne < self._best - 1e-6:
                self._best = ne
                self._since_best = 0
            else:
                self._since_best += 1
        # fresh ingestion for the (possibly different) world size, sought
        # back so replayed steps see the exact batches the lost steps saw
        self.ingestion = DataIngestionService(
            self.dataset, world_size=self.trainer.world_size,
            global_batch_size=self.global_batch_size,
            prefetch_depth=self.ingestion.prefetch_depth)
        self.ingestion.seek(restored)
        if self.lr_schedulers:
            if self.recovery.scheduler_factory is None:
                raise RecoveryError(
                    "loop has LR schedulers but the RecoveryManager has "
                    "no scheduler_factory to rebuild them for the new "
                    "trainer")
            self.lr_schedulers = list(
                self.recovery.scheduler_factory(self.trainer))
            for _ in range(restored):  # fast-forward to the resume point
                for scheduler in self.lr_schedulers:
                    scheduler.step()
        result.recoveries.append(event)
        return restored

"""Cluster sizing for online training (paper Sections 1, 4.1.3).

Online (recurrent/continuous) training has a *lower* throughput
requirement than offline pre-training, so it should run on
proportionally fewer nodes — which only works if the model still *fits*
on the smaller cluster, the exact situation that motivates hierarchical
memory: fewer nodes means less aggregate HBM, so tables spill to DRAM
behind the software cache and lookups slow down.

:func:`min_nodes_for` finds the smallest cluster that satisfies both the
capacity constraint (model fits in HBM+DRAM) and the throughput target,
accounting for the hierarchy slowdown when the model overflows HBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..comms import PROTOTYPE_TOPOLOGY
from ..models.zoo import ModelSpec
from .capacity import model_footprint
from .iteration import TrainingSetup, qps

__all__ = ["NodeSizing", "hierarchy_bw_fraction", "min_nodes_for",
           "sizing_sweep"]

# per-node memory of the prototype platform (Table 2)
_HBM_PER_NODE = 256e9
_DRAM_PER_NODE = 1.5e12
# sustained bandwidths for the blended-lookup estimate
_HBM_BW = 850e9 * 8      # aggregate per node
_DRAM_VIA_PCIE_BW = 12e9 * 8  # what the GPUs can pull from DRAM


@dataclass(frozen=True)
class NodeSizing:
    """Evaluation of one candidate node count."""

    nodes: int
    fits: bool
    hbm_fraction: float        # fraction of model bytes resident in HBM
    bw_fraction: float         # effective lookup bw vs pure-HBM
    achieved_qps: float
    meets_target: bool


def hierarchy_bw_fraction(hbm_fraction: float,
                          cache_hit_boost: float = 0.5) -> float:
    """Effective lookup bandwidth (relative to HBM) when only
    ``hbm_fraction`` of the model is HBM-resident.

    Accesses to the DRAM-resident part mostly *hit the software cache*
    (hot rows get cached in HBM); ``cache_hit_boost`` is the fraction of
    DRAM-part accesses served by the cache under Zipf traffic. The rest
    crawl over PCIe.
    """
    if not 0.0 <= hbm_fraction <= 1.0:
        raise ValueError("hbm_fraction must be in [0, 1]")
    if not 0.0 <= cache_hit_boost < 1.0:
        raise ValueError("cache_hit_boost must be in [0, 1)")
    hbm_served = hbm_fraction + (1 - hbm_fraction) * cache_hit_boost
    pcie_served = 1.0 - hbm_served
    time_per_byte = hbm_served / _HBM_BW + pcie_served / _DRAM_VIA_PCIE_BW
    pure_hbm_time = 1.0 / _HBM_BW
    return pure_hbm_time / time_per_byte


def _evaluate(spec: ModelSpec, nodes: int, target_qps: float,
              precision: str, optimizer: str,
              per_gpu_batch: int) -> NodeSizing:
    footprint = model_footprint(spec, precision, optimizer)
    hbm_total = nodes * _HBM_PER_NODE
    total_mem = nodes * (_HBM_PER_NODE + _DRAM_PER_NODE)
    fits = footprint.total_bytes <= total_mem
    hbm_fraction = min(1.0, hbm_total / footprint.total_bytes) \
        if footprint.total_bytes > 0 else 1.0
    bw_fraction = hierarchy_bw_fraction(hbm_fraction)
    achieved = 0.0
    if fits:
        topo = PROTOTYPE_TOPOLOGY(nodes)
        setup = TrainingSetup(
            spec=spec, topology=topo,
            global_batch=per_gpu_batch * topo.world_size,
            embedding_precision="fp16" if precision == "fp16" else "fp32",
            memory_hierarchy_bw_fraction=max(bw_fraction, 1e-3),
            load_imbalance=1.1)
        achieved = qps(setup)
    return NodeSizing(nodes=nodes, fits=fits, hbm_fraction=hbm_fraction,
                      bw_fraction=bw_fraction, achieved_qps=achieved,
                      meets_target=fits and achieved >= target_qps)


def min_nodes_for(spec: ModelSpec, target_qps: float,
                  precision: str = "fp16",
                  optimizer: str = "rowwise_adagrad",
                  per_gpu_batch: int = 512,
                  max_nodes: int = 64) -> Optional[NodeSizing]:
    """Smallest node count meeting capacity + throughput, or None."""
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    for nodes in range(1, max_nodes + 1):
        sizing = _evaluate(spec, nodes, target_qps, precision, optimizer,
                           per_gpu_batch)
        if sizing.meets_target:
            return sizing
    return None


def sizing_sweep(spec: ModelSpec, target_qps: float,
                 node_counts: List[int], precision: str = "fp16",
                 optimizer: str = "rowwise_adagrad",
                 per_gpu_batch: int = 512) -> List[NodeSizing]:
    """Evaluate a list of node counts (for the online-training bench)."""
    return [_evaluate(spec, n, target_qps, precision, optimizer,
                      per_gpu_batch) for n in node_counts]

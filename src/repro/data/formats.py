"""Sparse input layouts: separate offsets-per-table vs the combined
lengths format (paper Section 4.4).

The legacy CPU reader emitted *two tensors per table* (offsets + indices),
so a DLRM with hundreds of tables moved ~a thousand small tensors to the
GPU per iteration — a dominant overhead on Zion. The co-designed
**combined format** concatenates everything into three tensors total
(lengths, indices, dense) regardless of table count:

* ``lengths`` — ``(T * B,)``, per-table-per-sample bag sizes (lengths, not
  offsets, so that concatenation needs no rebasing);
* ``indices`` — all ids, tables back to back.

Both directions of the conversion are provided, plus tensor-count and
transfer-cost accounting used by the ingestion benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..embedding.table import lengths_to_offsets, offsets_to_lengths

__all__ = ["SeparateFormat", "CombinedFormat", "host_transfer_time"]

# Host-to-device copy bandwidths (bytes/s): pinned memory enables DMA at
# full PCIe rate; pageable memory pays an extra staging copy.
_PINNED_BW = 12e9
_PAGEABLE_BW = 6e9
_PER_TENSOR_OVERHEAD_S = 10e-6  # launch + driver overhead per transfer


@dataclass
class SeparateFormat:
    """Legacy layout: one (indices, offsets) pair per table."""

    tables: Dict[str, Tuple[np.ndarray, np.ndarray]]

    @property
    def num_tensors(self) -> int:
        return 2 * len(self.tables)

    @property
    def total_bytes(self) -> int:
        return sum(ids.nbytes + offs.nbytes
                   for ids, offs in self.tables.values())

    def to_combined(self, table_order: Sequence[str]) -> "CombinedFormat":
        if set(table_order) != set(self.tables):
            raise ValueError("table_order must cover exactly the tables")
        lengths_parts = []
        indices_parts = []
        batch = None
        for name in table_order:
            indices, offsets = self.tables[name]
            b = len(offsets) - 1
            if batch is None:
                batch = b
            elif b != batch:
                raise ValueError(
                    f"table {name} batch {b} != {batch}")
            lengths_parts.append(offsets_to_lengths(offsets))
            indices_parts.append(np.asarray(indices, dtype=np.int64))
        return CombinedFormat(
            table_names=list(table_order),
            batch_size=batch or 0,
            lengths=np.concatenate(lengths_parts) if lengths_parts else
            np.zeros(0, dtype=np.int64),
            indices=np.concatenate(indices_parts) if indices_parts else
            np.zeros(0, dtype=np.int64))


@dataclass
class CombinedFormat:
    """Co-designed layout: one lengths tensor + one indices tensor.

    ``lengths`` is ordered table-major: ``lengths[t * B + b]`` is the bag
    size of sample ``b`` in table ``t``; ``indices`` concatenates tables in
    the same order.
    """

    table_names: List[str]
    batch_size: int
    lengths: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        expected = len(self.table_names) * self.batch_size
        if len(self.lengths) != expected:
            raise ValueError(
                f"lengths has {len(self.lengths)} entries, expected "
                f"{expected} (T={len(self.table_names)}, B={self.batch_size})")
        if int(self.lengths.sum()) != len(self.indices):
            raise ValueError(
                f"indices has {len(self.indices)} ids but lengths sum to "
                f"{int(self.lengths.sum())}")

    @property
    def num_tensors(self) -> int:
        return 2  # lengths + indices, independent of table count

    @property
    def total_bytes(self) -> int:
        return self.lengths.nbytes + self.indices.nbytes

    def table_lengths(self, table: str) -> np.ndarray:
        t = self.table_names.index(table)
        b = self.batch_size
        return self.lengths[t * b:(t + 1) * b]

    def to_separate(self) -> SeparateFormat:
        tables = {}
        b = self.batch_size
        index_start = 0
        for t, name in enumerate(self.table_names):
            lengths = self.lengths[t * b:(t + 1) * b]
            nnz = int(lengths.sum())
            tables[name] = (
                self.indices[index_start:index_start + nnz].copy(),
                lengths_to_offsets(lengths))
            index_start += nnz
        return SeparateFormat(tables=tables)


def host_transfer_time(num_tensors: int, total_bytes: int,
                       pinned: bool = True) -> float:
    """CPU->GPU copy time: per-tensor overhead + bandwidth term.

    The Section 4.4 argument in one formula: consolidating a thousand
    small tensors into two eliminates ``998 * overhead``, and pinning
    doubles the copy bandwidth by skipping the staging copy.
    """
    if num_tensors < 0 or total_bytes < 0:
        raise ValueError("counts must be non-negative")
    bw = _PINNED_BW if pinned else _PAGEABLE_BW
    return num_tensors * _PER_TENSOR_OVERHEAD_S + total_bytes / bw

"""Tests for the Eq. 1 iteration latency model and overlap accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComponentTimes, breakdown, iteration_latency


def times(**kw):
    defaults = dict(bottom_mlp_fwd=1.0, embedding_lookup=1.0,
                    alltoall_fwd=1.0, interaction_fwd=0.5, top_mlp_fwd=2.0,
                    alltoall_bwd=1.0, embedding_update=1.0, allreduce=2.0)
    defaults.update(kw)
    return ComponentTimes(**defaults)


class TestEquation1:
    def test_forward_max_structure(self):
        """Bottom MLP overlaps lookup+alltoall; the max wins."""
        # pin backward cost so only the forward structure varies
        slow_mlp = times(bottom_mlp_fwd=10.0, bottom_mlp_bwd=0.0)
        fast_mlp = times(bottom_mlp_fwd=0.1, bottom_mlp_bwd=0.0)
        # embedding path is lookup + alltoall = 2.0 in both:
        # slow exposes max(10, 2) = 10, fast max(0.1, 2) = 2
        assert iteration_latency(slow_mlp) - iteration_latency(fast_mlp) \
            == pytest.approx(8.0)

    def test_allreduce_hidden_until_exceeds_backward(self):
        hidden = times(allreduce=0.1)
        t0 = iteration_latency(hidden)
        still_hidden = times(allreduce=5.0)
        assert iteration_latency(still_hidden) == t0  # bwd compute = 9.5
        exposed = times(allreduce=20.0)
        assert iteration_latency(exposed) > t0

    def test_exact_value(self):
        t = times()
        # fwd: max(1, 1+1) + 0.5 + 2 = 4.5
        # bwd: max(4 + 1 + max(1+1, 2), 2) = 7.0
        assert iteration_latency(t) == pytest.approx(11.5)

    def test_backward_defaults_double_forward(self):
        t = times(top_mlp_fwd=3.0)
        assert t.top_mlp_bwd == pytest.approx(6.0)

    def test_explicit_backward_respected(self):
        t = times(top_mlp_bwd=1.0)
        assert t.top_mlp_bwd == 1.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            times(alltoall_fwd=-1.0)

    @given(st.floats(min_value=0, max_value=10),
           st.floats(min_value=0, max_value=10),
           st.floats(min_value=0, max_value=10))
    @settings(max_examples=50)
    def test_exposed_leq_serialized_property(self, a, b, c):
        t = times(bottom_mlp_fwd=a, alltoall_fwd=b, allreduce=c)
        assert iteration_latency(t) <= t.serialized_total + 1e-9

    def test_zero_comms_is_pure_compute(self):
        t = times(alltoall_fwd=0.0, alltoall_bwd=0.0, allreduce=0.0,
                  input_alltoall=0.0, h2d=0.0)
        expected_fwd = max(1.0, 1.0) + 0.5 + 2.0
        expected_bwd = 4.0 + 1.0 + max(1.0, 2.0)
        assert iteration_latency(t) == pytest.approx(expected_fwd
                                                     + expected_bwd)


class TestBreakdown:
    def test_totals_match_equation(self):
        t = times()
        b = breakdown(t)
        assert b.total == pytest.approx(iteration_latency(t))

    def test_hidden_allreduce_exposed_zero(self):
        b = breakdown(times(allreduce=0.1))
        assert b.exposed["allreduce"] == 0.0
        assert b.serialized["allreduce"] == pytest.approx(0.1)

    def test_exposed_allreduce_is_excess(self):
        b = breakdown(times(allreduce=20.0))
        # bwd compute = top(4) + inter(1) + max(a2a+upd=2, bot_bwd=2) = 7
        assert b.exposed["allreduce"] == pytest.approx(20.0 - 7.0)

    def test_input_alltoall_hides_under_top_mlp(self):
        """Section 4.3: batch i+1's input AlltoAll overlaps top MLP fwd."""
        b = breakdown(times(input_alltoall=1.0))  # top_mlp_fwd = 2.0
        assert b.exposed["input_alltoall"] == 0.0
        b2 = breakdown(times(input_alltoall=3.0))
        assert b2.exposed["input_alltoall"] == pytest.approx(1.0)

    def test_h2d_hidden(self):
        """Fig 12: HtoD is completely hidden by double buffering."""
        b = breakdown(times(h2d=1.0))
        assert b.exposed["h2d"] == 0.0
        assert b.serialized["h2d"] == pytest.approx(1.0)

    def test_exposed_comms_aggregate(self):
        b = breakdown(times(allreduce=20.0))
        assert b.exposed_comms >= b.exposed["allreduce"]

    def test_each_component_exposed_leq_serialized(self):
        for kw in ({}, {"allreduce": 20.0}, {"bottom_mlp_fwd": 10.0},
                   {"alltoall_fwd": 5.0}, {"input_alltoall": 4.0}):
            b = breakdown(times(**kw))
            for name, exposed in b.exposed.items():
                assert exposed <= b.serialized[name] + 1e-9, name

    def test_fast_mlp_exposes_full_alltoall(self):
        """When the embedding path dominates, the AlltoAll is on the
        critical path with fully exposed overheads (Section 5.3.1)."""
        b = breakdown(times(bottom_mlp_fwd=0.01, alltoall_fwd=3.0))
        assert b.exposed["alltoall_fwd"] == pytest.approx(3.0, rel=0.01)

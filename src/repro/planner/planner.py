"""The representation planner: greedy multi-path search under budgets.

MP-Rec-style per-table representation selection. The planner starts
every table at full fp32 (the highest-fidelity representation) and,
while the arena-resident footprint exceeds the ``hot_bytes`` budget,
greedily applies the single *downgrade move* — switch one table to any
smaller representation — with the lowest regret per byte freed:

    score(move) = (d_error / scale_t + time_weight * d_time / T_full)
                  / (bytes_freed / B_full)

where ``scale_t`` is the table's max |weight| (so errors compare across
tables of different magnitude), ``T_full`` is the all-full modeled
lookup time and ``B_full`` the all-full footprint. ``cold`` placement is
exact (zero error) but pays the DRAM-link time penalty, so the score
naturally prefers cheap lossy compression (fp16/int8/TT) while the
quality floor allows it and falls back to cold when nothing else fits —
an empty budget therefore converges to the all-cold plan and a budget
above the all-full footprint never moves at all.

Quality is enforced twice: candidates whose *measured* element error
exceeds ``quality_floor`` are never considered, and when an eval batch
is supplied the planned export's NE gap against the fp32 export is
measured (both are real ``freeze()`` artifacts) and tables are demoted
to the exact cold path, worst measured error first, until the gap is
inside ``ne_floor``. The ``bandwidth_s`` cap is best-effort: cold tables
are promoted back into compressed hot representations while budget and
floor allow; if the cap still cannot hold (e.g. a zero memory budget)
the plan records ``bandwidth_met=False`` rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..data.datagen import MiniBatch
from ..data.freq import FrequencyStats
from ..metrics import normalized_entropy
from ..models.dlrm import DLRM
from .candidates import (PlannerCostModel, TableCandidates,
                         enumerate_candidates)
from .plan import PlanBudget, PlanError, RepresentationPlan, TableAssignment

__all__ = ["RepresentationPlanner", "plan_representation", "uniform_plan",
           "measure_ne_gap"]

_EPS = 1e-12


def measure_ne_gap(model: DLRM, plan: RepresentationPlan,
                   eval_batch: MiniBatch) -> float:
    """NE of the planned export minus NE of the fp32 export, measured on
    real frozen artifacts over ``eval_batch`` (may be negative)."""
    from ..serving.export import freeze
    labels = eval_batch.labels
    base = freeze(model)
    planned = freeze(model, plan=plan)
    return (normalized_entropy(planned.predict(eval_batch), labels)
            - normalized_entropy(base.predict(eval_batch), labels))


@dataclass
class _State:
    """Mutable per-table search state."""

    candidates: TableCandidates
    current: TableAssignment


class RepresentationPlanner:
    """Searches full/fp16/bf16/int8/TT/cold per table under a budget."""

    def __init__(self, cost: Optional[PlannerCostModel] = None) -> None:
        self.cost = cost if cost is not None else PlannerCostModel()

    # ------------------------------------------------------------------
    def plan(self, model: DLRM, budget: Optional[PlanBudget] = None,
             eval_batch: Optional[MiniBatch] = None,
             frequency_stats: Optional[FrequencyStats] = None
             ) -> RepresentationPlan:
        """Emit a :class:`RepresentationPlan` for ``model``.

        ``model`` is a :class:`repro.models.DLRM` or anything exposing
        ``to_local_model()`` (a :class:`repro.core.NeoTrainer`).
        ``eval_batch`` enables the measured-NE quality pass; without it
        ``ne_floor`` is ignored (per-table error floors still apply).
        """
        if hasattr(model, "to_local_model"):
            model = model.to_local_model()
        if not isinstance(model, DLRM):
            raise TypeError(
                f"planner needs a DLRM or NeoTrainer, got {type(model)!r}")
        budget = budget if budget is not None else PlanBudget()

        states: Dict[str, _State] = {}
        for t in model.config.tables:
            weight = model.embeddings.table(t.name).weight
            cands = enumerate_candidates(t, weight, self.cost,
                                         frequency_stats)
            states[t.name] = _State(candidates=cands,
                                    current=cands.options[0])

        baseline_hot = sum(s.current.hot_bytes for s in states.values())
        baseline_time = sum(s.current.lookup_s for s in states.values())

        self._fit_memory(states, budget, baseline_hot, baseline_time)
        bandwidth_met = self._fit_bandwidth(states, budget)
        plan = self._emit(states, budget, baseline_hot, bandwidth_met)

        if budget.ne_floor is not None and eval_batch is not None:
            plan = self._fit_ne(model, plan, states, budget, baseline_hot,
                                eval_batch)
        plan.validate()
        return plan

    # ------------------------------------------------------------------
    def _legal(self, state: _State, budget: PlanBudget
               ) -> List[TableAssignment]:
        """Downgrade moves from the current assignment: strictly fewer
        hot bytes, inside the per-table quality floor."""
        floor = budget.quality_floor
        out = []
        for cand in state.candidates.options:
            if cand.hot_bytes >= state.current.hot_bytes:
                continue
            if floor is not None and cand.error > floor:
                continue
            out.append(cand)
        return out

    def _score(self, state: _State, cand: TableAssignment,
               baseline_hot: int, baseline_time: float) -> float:
        scale = max(state.candidates.scale, _EPS)
        d_error = (cand.error - state.current.error) / scale
        d_time = (cand.lookup_s - state.current.lookup_s) \
            / max(baseline_time, _EPS)
        freed = (state.current.hot_bytes - cand.hot_bytes) \
            / max(baseline_hot, 1)
        return (max(d_error, 0.0) + self.cost.time_weight
                * max(d_time, 0.0)) / max(freed, _EPS)

    def _fit_memory(self, states: Dict[str, _State], budget: PlanBudget,
                    baseline_hot: int, baseline_time: float) -> None:
        def hot() -> int:
            return sum(s.current.hot_bytes for s in states.values())

        while hot() > budget.hot_bytes:
            best: Optional[Tuple[float, str, str, TableAssignment]] = None
            for name in sorted(states):
                state = states[name]
                for cand in self._legal(state, budget):
                    key = (self._score(state, cand, baseline_hot,
                                       baseline_time), name, cand.kind, cand)
                    if best is None or key[:3] < best[:3]:
                        best = key
            if best is None:
                raise PlanError(
                    f"cannot fit hot bytes {hot()} into budget "
                    f"{budget.hot_bytes} — no legal downgrade move left "
                    f"(is the cold path disabled?)")
            states[best[1]].current = best[3]

    def _fit_bandwidth(self, states: Dict[str, _State],
                       budget: PlanBudget) -> bool:
        """Best-effort: promote cold tables back into compressed hot
        representations while the memory budget and floors allow."""
        if budget.bandwidth_s is None:
            return True

        def total_time() -> float:
            return sum(s.current.lookup_s for s in states.values())

        def hot() -> int:
            return sum(s.current.hot_bytes for s in states.values())

        while total_time() > budget.bandwidth_s:
            headroom = budget.hot_bytes - hot()
            best: Optional[Tuple[float, str, str, TableAssignment]] = None
            for name in sorted(states):
                state = states[name]
                cur = state.current
                floor = budget.quality_floor
                for cand in state.candidates.options:
                    if cand.lookup_s >= cur.lookup_s - _EPS:
                        continue
                    if cand.hot_bytes - cur.hot_bytes > headroom:
                        continue
                    if floor is not None and cand.error > floor:
                        continue
                    grown = max(cand.hot_bytes - cur.hot_bytes, 1)
                    key = ((cur.lookup_s - cand.lookup_s) / grown,
                           name, cand.kind)
                    # maximize time saved per byte spent
                    if best is None or key > best[:3]:
                        best = key + (cand,)
            if best is None:
                return False
            states[best[1]].current = best[3]
        return True

    def _fit_ne(self, model: DLRM, plan: RepresentationPlan,
                states: Dict[str, _State], budget: PlanBudget,
                baseline_hot: int, eval_batch: MiniBatch
                ) -> RepresentationPlan:
        """Demote lossy tables to the exact cold path, worst measured
        error first, until the measured NE gap is inside the floor."""
        gap = measure_ne_gap(model, plan, eval_batch)
        while gap > budget.ne_floor:
            lossy = [(s.current.error, name) for name, s in states.items()
                     if s.current.error > 0.0]
            if not lossy:
                # every table already exact — the gap is numerical noise
                break
            _, worst = max(lossy)
            states[worst].current = states[worst].candidates.option("cold")
            plan = self._emit(states, budget, baseline_hot,
                              plan.bandwidth_met)
            gap = measure_ne_gap(model, plan, eval_batch)
        plan.measured_ne_gap = gap
        return plan

    def _emit(self, states: Dict[str, _State], budget: PlanBudget,
              baseline_hot: int, bandwidth_met: bool) -> RepresentationPlan:
        return RepresentationPlan(
            assignments={name: s.current for name, s in states.items()},
            budget=budget, bandwidth_met=bandwidth_met,
            baseline_hot_bytes=baseline_hot)


def plan_representation(model: DLRM, budget: Optional[PlanBudget] = None,
                        cost: Optional[PlannerCostModel] = None,
                        eval_batch: Optional[MiniBatch] = None,
                        frequency_stats: Optional[FrequencyStats] = None
                        ) -> RepresentationPlan:
    """One-call convenience wrapper over :class:`RepresentationPlanner`."""
    return RepresentationPlanner(cost).plan(
        model, budget, eval_batch=eval_batch,
        frequency_stats=frequency_stats)


def uniform_plan(model: DLRM, kind: str,
                 cost: Optional[PlannerCostModel] = None
                 ) -> RepresentationPlan:
    """Assign every table the same representation — the single-path
    baselines the mixed plan is benchmarked against."""
    if hasattr(model, "to_local_model"):
        model = model.to_local_model()
    cost = cost if cost is not None else PlannerCostModel()
    assignments: Dict[str, TableAssignment] = {}
    baseline_hot = 0
    for t in model.config.tables:
        weight = model.embeddings.table(t.name).weight
        cands = enumerate_candidates(t, weight, cost)
        assignments[t.name] = cands.option(kind)
        baseline_hot += cands.options[0].hot_bytes
    return RepresentationPlan(assignments=assignments,
                              baseline_hot_bytes=baseline_hot)

"""Process-group facade: collectives + traffic accounting + modeled time.

This is the reproduction's analogue of the PyTorch ProcessGroup (NCCL)
interface the paper extends (Section 4.5). It binds together

* the exact functional collectives (data really moves between ranks),
* optional wire quantization (:class:`QuantizedCommsConfig`),
* byte accounting per collective type, and
* the alpha-beta latency model, accumulating a modeled communication time
  alongside the real computation.

Accounting is published through a :class:`repro.obs.MetricRegistry`
scope (``comms.calls`` / ``comms.wire_bytes`` / ``comms.modeled_seconds``,
labelled by collective), and every collective runs inside a tracer span
carrying its byte/latency attribution — so a traced run reports, per
collective kind, exactly the traffic the legacy :class:`CommsLog`
accessors aggregate.

The v2 surface (this module) differs from the original in three ways:

* AlltoAll flavours are selected with the typed :class:`AlltoAllKind`
  enum. The old ``direction="forward_alltoall"`` string form was removed
  after its deprecation window — ``direction=`` raises ``TypeError`` and
  string kinds raise ``ValueError``.
* Every collective returns a :class:`CollectiveResult` carrying the
  outputs *and* the accounting (wire bytes, modeled seconds) of that
  call, so callers no longer re-derive byte counts from payload shapes.
  ``CollectiveResult`` is a sequence over its outputs, so pre-v2 callers
  that indexed or iterated the return value keep working unchanged.
* Byte accounting never hard-codes an element width: float payloads are
  billed at the configured wire precision and everything else at the
  arrays' true ``nbytes`` (``reduce_scatter`` / ``all_gather`` /
  ``broadcast`` previously assumed 4 bytes/element).

Byte-accounting conventions (audited for the sliced-gradient AlltoAll
paths of column-wise sharding):

* Float payloads are counted as ``elements x wire precision`` — the
  quantization codec determines bytes, not the host dtype. An AlltoAll
  whose per-destination slices are uneven (e.g. uneven column splits)
  counts exactly ``sum(slice sizes)``; for a column-wise table that is
  ``sum(shard_cols) * batch`` elements per iteration, however the columns
  were cut.
* Index payloads (the :attr:`AlltoAllKind.INDEX` AlltoAll) and the
  unquantized collectives (``reduce_scatter`` / ``all_gather`` /
  ``broadcast``) are counted from the arrays' real ``nbytes`` — an fp16
  or int32 payload is billed at 2 or 4 bytes per element, not a
  hard-coded width.
* Self-sends (rank r -> rank r) are included, matching the analytical
  model in :mod:`repro.comms.perf_model` and the paper's Fig. 20
  convention of quoting full AlltoAll volume.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from ..obs.metrics import MetricRegistry, MetricScope
from ..obs.tracer import NULL_TRACER, as_tracer
from . import collectives, perf_model
from .quantization import QuantizedCommsConfig, wire_bytes
from .topology import ClusterTopology

__all__ = ["AlltoAllKind", "CollectiveResult", "CommsLog",
           "SimProcessGroup"]


class AlltoAllKind(Enum):
    """Typed dispatch for the three AlltoAll flavours (v2 API).

    Replaces the pre-v2 ``direction=`` string argument; the enum values
    are the historical strings so metric/span labels are unchanged.
    """

    FORWARD = "forward_alltoall"
    BACKWARD = "backward_alltoall"
    INDEX = "index"


def _coerce_alltoall_kind(kind: Union[AlltoAllKind, str]) -> AlltoAllKind:
    """Require the typed v2 ``kind``; the string forms are gone."""
    if isinstance(kind, AlltoAllKind):
        return kind
    raise ValueError(
        f"AlltoAll dispatch takes kind=AlltoAllKind.FORWARD / .BACKWARD "
        f"/ .INDEX; the string form ({kind!r}) was removed after its "
        f"deprecation window")


@dataclass
class CollectiveResult(Sequence):
    """One collective's outputs plus its accounting (v2 API).

    ``outputs`` is the per-rank result list the functional collectives
    produce; ``wire_bytes`` and ``modeled_seconds`` are exactly what the
    process group recorded for this call, so callers need not re-derive
    traffic from payload shapes. The object is a sequence over
    ``outputs`` (indexing, iteration, ``len``) as a thin
    backward-compat shim for pre-v2 callers that treated the return
    value as the output list itself.
    """

    outputs: List[Any]
    collective: str = ""
    wire_bytes: int = 0
    modeled_seconds: float = 0.0
    per_rank_seconds: List[float] = field(default_factory=list)
    #: rank-stacked fast path only: the full ``(W, ...)`` result array
    #: (``outputs`` then holds per-rank views into it). ``None`` for the
    #: list-based collectives.
    stacked: Optional[np.ndarray] = None

    def __getitem__(self, index):
        return self.outputs[index]

    def __len__(self) -> int:
        return len(self.outputs)


class CommsLog:
    """Per-collective traffic and modeled time, backed by a metric scope.

    The historical interface (``calls`` / ``wire_bytes`` /
    ``modeled_seconds`` dicts keyed by collective name, ``total_bytes``,
    ``total_seconds``) is preserved as views over registry counters, so
    existing callers and the new observability layer read the same
    numbers by construction.
    """

    def __init__(self, scope: Optional[MetricScope] = None) -> None:
        self._scope = scope if scope is not None \
            else MetricRegistry().scope("comms")

    @property
    def scope(self) -> MetricScope:
        return self._scope

    def record(self, name: str, bytes_on_wire: float,
               seconds: float) -> None:
        self._scope.counter("calls", collective=name).inc(1)
        self._scope.counter("wire_bytes",
                            collective=name).inc(int(bytes_on_wire))
        self._scope.counter("modeled_seconds",
                            collective=name).inc(float(seconds))

    @property
    def calls(self) -> Dict[str, int]:
        return self._scope.by_label("calls", "collective")

    @property
    def wire_bytes(self) -> Dict[str, int]:
        return self._scope.by_label("wire_bytes", "collective")

    @property
    def modeled_seconds(self) -> Dict[str, float]:
        return self._scope.by_label("modeled_seconds", "collective")

    @property
    def total_bytes(self) -> int:
        return sum(self.wire_bytes.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.modeled_seconds.values())

    def reset(self) -> None:
        self._scope.reset()


class SimProcessGroup:
    """All-rank collectives with accounting, for the lock-step trainer."""

    def __init__(self, topology: ClusterTopology,
                 comms_config: Optional[QuantizedCommsConfig] = None,
                 registry: Optional[MetricRegistry] = None,
                 tracer=None) -> None:
        self.topology = topology
        self.comms_config = comms_config or QuantizedCommsConfig()
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = as_tracer(tracer)
        self.log = CommsLog(self.registry.scope("comms"))

    @property
    def world_size(self) -> int:
        return self.topology.world_size

    def instrument(self, tracer=None,
                   registry: Optional[MetricRegistry] = None) -> None:
        """Swap in a tracer and/or registry after construction."""
        if tracer is not None:
            self.tracer = as_tracer(tracer)
        if registry is not None:
            self.registry = registry
            self.log = CommsLog(registry.scope("comms"))

    def on_iteration_start(self, step: int) -> None:
        """Iteration-boundary hook (v2 API).

        The trainer announces the logical step before issuing any of an
        iteration's collectives; the base group ignores it, wrappers
        (:class:`repro.resilience.FaultyProcessGroup`) key scheduled
        faults on it.
        """

    def _check_world(self, inputs: Sequence, name: str) -> None:
        if len(inputs) != self.world_size:
            raise ValueError(
                f"{name} expects one input per rank "
                f"({self.world_size}), got {len(inputs)}")

    def _record(self, name: str, total_wire: float, seconds: float) -> None:
        self.log.record(name, total_wire, seconds)

    def _execute(self, name: str, inputs: Sequence, total_wire: float,
                 seconds: float, fn: Callable[[], list]) -> CollectiveResult:
        """Run one collective under a span and record its accounting.

        Every public collective funnels through here, so a wrapper can
        intercept a single method to adjust modeled time, fail attempts,
        or kill ranks (:class:`repro.resilience.FaultyProcessGroup`
        overrides this).
        """
        with self.tracer.span(f"comms.{name}", cat="comms",
                              wire_bytes=total_wire,
                              modeled_seconds=seconds):
            out = fn()
        self._record(name, total_wire, seconds)
        return CollectiveResult(outputs=out, collective=name,
                                wire_bytes=int(total_wire),
                                modeled_seconds=seconds)

    # ------------------------------------------------------------------
    def all_reduce(self, inputs: Union[List[np.ndarray], np.ndarray]
                   ) -> CollectiveResult:
        """Elementwise-sum AllReduce.

        ``inputs`` is either the classic per-rank list or — the
        rank-stacked fast path — one ``(W, ...)`` array whose leading
        axis enumerates ranks. Both forms bill identical wire bytes and
        modeled latency (the per-GPU payload is one rank's slice either
        way), produce bitwise-identical per-rank outputs, and funnel
        through :meth:`_execute` so fault wrappers see the same
        collective name and per-rank input views.
        """
        if isinstance(inputs, np.ndarray):
            return self._all_reduce_stacked(inputs)
        self._check_world(inputs, "all_reduce")
        precision = self.comms_config.allreduce
        per_gpu = wire_bytes(int(inputs[0].size), precision)
        seconds = perf_model.all_reduce_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        return self._execute(
            "all_reduce", inputs, total_wire, seconds,
            lambda: collectives.all_reduce(
                inputs, codec=self.comms_config.allreduce_codec()))

    def _all_reduce_stacked(self, stacked: np.ndarray) -> CollectiveResult:
        self._check_world(stacked, "all_reduce")
        precision = self.comms_config.allreduce
        per_gpu = wire_bytes(int(stacked[0].size), precision)
        seconds = perf_model.all_reduce_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        holder: Dict[str, np.ndarray] = {}

        def run() -> list:
            out = collectives.all_reduce_stacked(
                stacked, codec=self.comms_config.allreduce_codec())
            holder["out"] = out
            return [out[r] for r in range(self.world_size)]

        result = self._execute(
            "all_reduce", [stacked[r] for r in range(self.world_size)],
            total_wire, seconds, run)
        result.stacked = holder["out"]
        return result

    def all_to_all(self, inputs: List[List[np.ndarray]],
                   kind: Union[AlltoAllKind, str] = AlltoAllKind.FORWARD
                   ) -> CollectiveResult:
        self._check_world(inputs, "all_to_all")
        kind = _coerce_alltoall_kind(kind)
        if kind is AlltoAllKind.FORWARD:
            codec = self.comms_config.forward_codec()
            precision = self.comms_config.forward_alltoall
        elif kind is AlltoAllKind.BACKWARD:
            codec = self.comms_config.backward_codec()
            precision = self.comms_config.backward_alltoall
        else:
            # index redistribution is integer data: never quantized
            codec = None
            precision = None
        if kind is AlltoAllKind.INDEX:
            # integer payloads are billed at their true width (ids are
            # int64 today; nbytes keeps this honest if that ever changes)
            total_wire = sum(int(np.asarray(x).nbytes) for row in inputs
                             for x in row)
        else:
            # float payloads are billed at the wire precision, summed
            # over every (src, dst) slice — exact under uneven splits
            total_elems = sum(int(np.asarray(x).size) for row in inputs
                              for x in row)
            total_wire = wire_bytes(total_elems, precision)
        per_gpu = total_wire / max(self.world_size, 1)
        seconds = perf_model.all_to_all_time(per_gpu, self.topology)
        name = f"all_to_all/{kind.value}"
        return self._execute(
            name, inputs, total_wire, seconds,
            lambda: collectives.all_to_all(inputs, codec=codec))

    def reduce_scatter(self, inputs: List[List[np.ndarray]]
                       ) -> CollectiveResult:
        self._check_world(inputs, "reduce_scatter")
        per_gpu = sum(int(np.asarray(x).nbytes) for x in inputs[0])
        seconds = perf_model.reduce_scatter_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        return self._execute(
            "reduce_scatter", inputs, total_wire, seconds,
            lambda: collectives.reduce_scatter(inputs))

    def all_gather(self, inputs: Union[List[np.ndarray], np.ndarray]
                   ) -> CollectiveResult:
        """AllGather; accepts a per-rank list or (rank-stacked fast
        path) one ``(W, ...)`` array. Billing is identical either way;
        the stacked result (``.stacked``) is the gathered ``(W, ...)``
        payload every rank receives, and ``outputs`` holds the usual
        per-destination lists as views into it (read-only by
        convention)."""
        if isinstance(inputs, np.ndarray):
            return self._all_gather_stacked(inputs)
        self._check_world(inputs, "all_gather")
        per_gpu = int(np.asarray(inputs[0]).nbytes)
        seconds = perf_model.all_gather_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        return self._execute(
            "all_gather", inputs, total_wire, seconds,
            lambda: collectives.all_gather(inputs))

    def _all_gather_stacked(self, stacked: np.ndarray) -> CollectiveResult:
        self._check_world(stacked, "all_gather")
        per_gpu = int(np.asarray(stacked[0]).nbytes)
        seconds = perf_model.all_gather_time(per_gpu, self.topology)
        total_wire = per_gpu * self.world_size
        holder: Dict[str, np.ndarray] = {}

        def run() -> list:
            out = collectives.all_gather_stacked(stacked)
            holder["out"] = out
            received = [out[s] for s in range(self.world_size)]
            return [received for _ in range(self.world_size)]

        result = self._execute(
            "all_gather", [stacked[r] for r in range(self.world_size)],
            total_wire, seconds, run)
        result.stacked = holder["out"]
        return result

    def broadcast(self, inputs: List[np.ndarray],
                  root: int = 0) -> CollectiveResult:
        self._check_world(inputs, "broadcast")
        payload = int(np.asarray(inputs[root]).nbytes)
        seconds = perf_model.broadcast_time(payload, self.topology)
        total_wire = payload * self.world_size
        return self._execute(
            "broadcast", inputs, total_wire, seconds,
            lambda: collectives.broadcast(inputs, root=root))

    def reset_log(self) -> None:
        self.log.reset()

"""Cluster topology: ZionEX / prototype HGX-2 network model (Table 2).

Two network planes matter for DLRM training:

* **scale-up** — NVLink/NVSwitch within a node (1.2 TB/s unidirectional
  aggregate per node on the prototype);
* **scale-out** — one dedicated RoCE NIC per GPU (8 x 100 Gbps per node),
  isolated from the datacenter network, carrying RDMA/GPUDirect traffic.

Plus the **frontend** host NICs (2 x 100 Gbps) used only for data
ingestion — the paper's key topology decision is that training traffic
never touches them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterTopology", "PROTOTYPE_TOPOLOGY", "ZION_TOPOLOGY"]


@dataclass(frozen=True)
class ClusterTopology:
    """Bandwidths in bytes/s (unidirectional), latencies in seconds."""

    num_nodes: int
    gpus_per_node: int = 8
    # per-GPU NVLink bandwidth within the node
    scaleup_bw: float = 150e9
    # per-GPU dedicated RoCE NIC bandwidth (100 Gbps = 12.5 GB/s)
    scaleout_bw: float = 12.5e9
    # achievable fraction of scale-out line rate (paper: 10.5 of 12.5 GB/s)
    scaleout_efficiency: float = 0.84
    scaleup_latency: float = 2e-6
    scaleout_latency: float = 5e-6
    # frontend (data ingestion) NICs per node, bytes/s aggregate
    frontend_bw: float = 25e9
    # does inter-node traffic bypass the host (GPUDirect RDMA)?
    rdma: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("num_nodes and gpus_per_node must be positive")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def achievable_scaleout_bw(self) -> float:
        return self.scaleout_bw * self.scaleout_efficiency

    @property
    def node_scaleout_bw(self) -> float:
        """Aggregate achievable scale-out bandwidth of one node."""
        return self.achievable_scaleout_bw * self.gpus_per_node

    @property
    def bisection_bw(self) -> float:
        """Cluster bisection bandwidth (full-bisection fabric assumed)."""
        return self.node_scaleout_bw * self.num_nodes / 2

    def is_single_node(self) -> bool:
        return self.num_nodes == 1


def PROTOTYPE_TOPOLOGY(num_nodes: int = 16) -> ClusterTopology:
    """The HGX-2 prototype cluster of Section 5.2 (Table 2 numbers)."""
    return ClusterTopology(num_nodes=num_nodes)


def ZION_TOPOLOGY(num_nodes: int = 16) -> ClusterTopology:
    """Previous-generation Zion: NICs attached to CPUs, no GPUDirect, and
    training traffic competes on the shared datacenter network (TCP/IP).
    The effective scale-out rate collapses accordingly (Section 3.1)."""
    return ClusterTopology(
        num_nodes=num_nodes,
        scaleout_bw=12.5e9,
        # host-mediated TCP/IP on a shared network: ~30% of line rate
        scaleout_efficiency=0.3,
        scaleout_latency=50e-6,
        rdma=False,
    )

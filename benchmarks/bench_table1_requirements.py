"""Table 1: DLRM training platform demand, derived rather than assumed.

Works backwards from the model zoo at ~1M QPS to the platform
requirements, and checks each derived row reaches the order of magnitude
Table 1 states (1+ PF/s compute, 1+ TB memory, 100+ TB/s memory BW,
100+ GB/s injection, 1+ TB/s bisection).
"""

import pytest

from repro.models import full_spec
from repro.perf import TABLE1_REFERENCE, derive_demand


def demand_table():
    rows = []
    for name in ("A1", "A2", "A3"):
        d = derive_demand(full_spec(name), target_qps=1e6, num_workers=128)
        rows.append((name,
                     f"{d.total_compute_flops / 1e15:.2f} PF/s",
                     f"{d.total_memory_bytes / 1e12:.2f} TB",
                     f"{d.total_memory_bw / 1e12:.1f} TB/s",
                     f"{d.injection_bw_per_worker / 1e9:.1f} GB/s",
                     f"{d.bisection_bw / 1e12:.2f} TB/s"))
    rows.append(("Table 1", "1+ PF/s", "1+ TB", "100+ TB/s", "100+ GB/s",
                 "1+ TB/s"))
    return rows


def test_table1_derived_demand(benchmark, report):
    rows = benchmark(demand_table)
    report("Table 1: derived platform demand at 1M QPS",
           ["model", "compute", "memory", "memory BW", "injection/worker",
            "bisection"], rows)
    for name in ("A2", "A3"):
        d = derive_demand(full_spec(name), target_qps=1e6, num_workers=128)
        assert d.total_compute_flops > TABLE1_REFERENCE[
            "total_compute_flops"]
        assert d.total_memory_bytes > TABLE1_REFERENCE["total_memory_bytes"]
        assert d.total_memory_bw > TABLE1_REFERENCE["total_memory_bw"] / 10
        assert d.bisection_bw > TABLE1_REFERENCE["bisection_bw"]
        assert d.injection_bw_per_worker > TABLE1_REFERENCE[
            "injection_bw_per_worker"] / 10

"""API-stability tests for the comms v2 surface.

The removed pre-v2 forms (string AlltoAll dispatch) must raise;
the surviving deprecated perf-model name aliases must keep working —
with a DeprecationWarning — and produce results identical to the v2
forms. Plus golden wire-byte values
proving the nbytes billing fix: fp16 payloads are billed at 2
bytes/element, never a hard-coded 4.
"""

import numpy as np
import pytest

from repro.comms import (AlltoAllKind, ClusterTopology, CollectiveResult,
                         SimProcessGroup, perf_model)

WORLD = 4
TOPO = ClusterTopology(num_nodes=1, gpus_per_node=WORLD)


def _alltoall_payload(dtype=np.float32):
    return [[np.full(3, r * WORLD + c, dtype=dtype) for c in range(WORLD)]
            for r in range(WORLD)]


class TestRemovedAlltoAllForms:
    """The pre-v2 string dispatch was removed after its deprecation
    window: ``direction=`` is no longer a parameter and string kinds
    raise instead of warning."""

    def test_direction_keyword_removed(self):
        pg = SimProcessGroup(TOPO)
        with pytest.raises(TypeError):
            pg.all_to_all(_alltoall_payload(),
                          direction="forward_alltoall")

    def test_string_kind_removed(self):
        pg = SimProcessGroup(TOPO)
        with pytest.raises(ValueError, match="removed after its"):
            pg.all_to_all(_alltoall_payload(), "backward_alltoall")

    def test_every_enum_kind_still_dispatches(self):
        for kind in AlltoAllKind:
            pg = SimProcessGroup(TOPO)
            payload = _alltoall_payload(
                np.int64 if kind is AlltoAllKind.INDEX else np.float32)
            result = pg.all_to_all(payload, kind=kind)
            assert result.collective == f"all_to_all/{kind.value}"

    def test_unknown_string_rejected(self):
        pg = SimProcessGroup(TOPO)
        with pytest.raises(ValueError):
            pg.all_to_all(_alltoall_payload(), "sideways")


class TestDeprecatedPerfModelNames:
    @pytest.mark.parametrize("old_name,new_name", [
        ("alltoall_time", "all_to_all_time"),
        ("allreduce_time", "all_reduce_time"),
        ("allgather_time", "all_gather_time"),
        ("achieved_alltoall_bw", "achieved_all_to_all_bw"),
        ("achieved_allreduce_bw", "achieved_all_reduce_bw"),
    ])
    def test_alias_warns_and_matches(self, old_name, new_name):
        old_fn = getattr(perf_model, old_name)
        new_fn = getattr(perf_model, new_name)
        args = (2 ** 20, TOPO)
        with pytest.warns(DeprecationWarning, match=old_name):
            old = old_fn(*args)
        assert old == new_fn(*args)

    def test_aliases_exported(self):
        for name in ("alltoall_time", "allreduce_time", "allgather_time",
                     "achieved_alltoall_bw", "achieved_allreduce_bw"):
            assert name in perf_model.__all__


class TestGoldenFp16WireBytes:
    """nbytes billing: fp16 payloads cost exactly half of fp32 — the
    hard-coded 4-bytes/element bug these collectives used to have."""

    def test_reduce_scatter_fp16(self):
        pg = SimProcessGroup(TOPO)
        inputs = [[np.ones(3, dtype=np.float16) for _ in range(WORLD)]
                  for _ in range(WORLD)]
        result = pg.reduce_scatter(inputs)
        # per-GPU contribution: 4 chunks x 3 elements x 2 bytes = 24
        assert result.wire_bytes == 24 * WORLD
        assert pg.log.wire_bytes["reduce_scatter"] == 96
        assert result.modeled_seconds == pytest.approx(
            perf_model.reduce_scatter_time(24, TOPO))

    def test_all_gather_fp16(self):
        pg = SimProcessGroup(TOPO)
        result = pg.all_gather([np.ones(5, dtype=np.float16)
                                for _ in range(WORLD)])
        assert result.wire_bytes == 5 * 2 * WORLD
        assert result.modeled_seconds == pytest.approx(
            perf_model.all_gather_time(10, TOPO))

    def test_broadcast_fp16(self):
        pg = SimProcessGroup(TOPO)
        result = pg.broadcast([np.ones(7, dtype=np.float16)
                               for _ in range(WORLD)], root=0)
        assert result.wire_bytes == 7 * 2 * WORLD
        np.testing.assert_array_equal(result[3],
                                      np.ones(7, dtype=np.float16))

    def test_fp32_costs_double_fp16(self):
        for dtype, factor in ((np.float16, 1), (np.float32, 2)):
            pg = SimProcessGroup(TOPO)
            pg.all_gather([np.ones(8, dtype=dtype) for _ in range(WORLD)])
            assert pg.log.wire_bytes["all_gather"] == 8 * 2 * factor * WORLD


class TestBroadcastPerfModel:
    """Broadcast has its own perf-model entry — no longer billed as an
    AllGather."""

    def test_broadcast_time_differs_from_all_gather_time(self):
        topo = ClusterTopology(num_nodes=4, gpus_per_node=8)
        payload = 2 ** 24
        bcast = perf_model.broadcast_time(payload, topo)
        agather = perf_model.all_gather_time(payload, topo)
        assert bcast > 0
        # broadcast ships the full payload across the scale-out ring;
        # all_gather only moves per-GPU chunks between nodes
        assert bcast != agather

    def test_single_gpu_broadcast_is_free(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=1)
        assert perf_model.broadcast_time(2 ** 20, topo) == 0.0

    def test_process_group_uses_broadcast_time(self):
        pg = SimProcessGroup(TOPO)
        payload = np.ones(1024, dtype=np.float32)
        pg.broadcast([payload.copy() for _ in range(WORLD)], root=1)
        assert pg.log.modeled_seconds["broadcast"] == pytest.approx(
            perf_model.broadcast_time(payload.nbytes, TOPO))


class TestCollectiveResult:
    def test_fields_and_sequence_protocol(self):
        pg = SimProcessGroup(TOPO)
        result = pg.all_reduce([np.full(4, float(r), dtype=np.float32)
                                for r in range(WORLD)])
        assert isinstance(result, CollectiveResult)
        assert result.collective == "all_reduce"
        assert isinstance(result.wire_bytes, int)
        assert result.wire_bytes == 4 * 4 * WORLD
        assert result.modeled_seconds > 0
        # sequence shim: len / index / iterate like the old list return
        assert len(result) == WORLD
        expected = np.full(4, sum(range(WORLD)), dtype=np.float32)
        np.testing.assert_array_equal(result[0], expected)
        for out in result:
            np.testing.assert_array_equal(out, expected)
        assert list(result) == result.outputs

    def test_all_collectives_return_collective_result(self):
        pg = SimProcessGroup(TOPO)
        ones = [np.ones(4, dtype=np.float32) for _ in range(WORLD)]
        nested = [[np.ones(2, dtype=np.float32) for _ in range(WORLD)]
                  for _ in range(WORLD)]
        for result in (pg.all_reduce(ones),
                       pg.all_to_all(nested, kind=AlltoAllKind.FORWARD),
                       pg.reduce_scatter(nested),
                       pg.all_gather(ones),
                       pg.broadcast(ones, root=0)):
            assert isinstance(result, CollectiveResult)


class TestExplicitExports:
    def test_comms_all_is_importable(self):
        import repro.comms as comms
        for name in comms.__all__:
            assert hasattr(comms, name), name
        for name in ("AlltoAllKind", "CollectiveResult", "SimProcessGroup",
                     "CommsLog"):
            assert name in comms.__all__

    def test_process_group_module_all(self):
        from repro.comms import process_group
        assert set(process_group.__all__) == {
            "AlltoAllKind", "CollectiveResult", "CommsLog",
            "SimProcessGroup"}

"""Scheme crossover analysis: where does data-parallel replication stop
paying off? (paper Section 4.2.4)

"Small embedding tables with fewer rows are good candidates for
data-parallel sharding" — because a replicated table trades the pooled
AlltoAll for a gradient AllReduce over the whole table, the break-even
point is where AllReduce bytes (~ table size) overtake AlltoAll bytes
(~ batch * dim). This module computes that crossover explicitly, giving
planner policies (like ``dp_threshold_rows``) a principled value instead
of a magic number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..embedding.table import EmbeddingTableConfig
from ..sharding.cost_model import CostModelParams, shard_cost
from ..sharding.schemes import Shard, ShardingScheme

__all__ = ["CrossoverPoint", "dp_vs_tw_cost", "find_dp_crossover",
           "crossover_sweep"]


@dataclass(frozen=True)
class CrossoverPoint:
    """DP-vs-TW break-even for one (dim, pooling) table family."""

    embedding_dim: int
    avg_pooling: float
    crossover_rows: int     # largest H where DP still wins
    dp_cost_at_crossover: float
    tw_cost_at_crossover: float


def dp_vs_tw_cost(num_rows: int, embedding_dim: int, avg_pooling: float,
                  params: CostModelParams) -> Tuple[float, float]:
    """(data-parallel cost, table-wise cost) for one table shape."""
    cfg = EmbeddingTableConfig("probe", num_rows, embedding_dim,
                               avg_pooling=avg_pooling)
    shard = Shard("probe", 0, (0, num_rows), (0, embedding_dim))
    dp = shard_cost(cfg, shard, ShardingScheme.DATA_PARALLEL,
                    params).total_seconds
    tw = shard_cost(cfg, shard, ShardingScheme.TABLE_WISE,
                    params).total_seconds
    return dp, tw


def find_dp_crossover(embedding_dim: int, avg_pooling: float,
                      params: CostModelParams,
                      max_rows: int = 10 ** 9) -> CrossoverPoint:
    """Binary-search the largest row count where DP beats TW.

    DP cost grows linearly in H (AllReduce over the table) while TW cost
    is H-independent (up to the mild locality factor), so the cost
    difference crosses zero exactly once.
    """
    if embedding_dim <= 0 or avg_pooling <= 0:
        raise ValueError("embedding_dim and avg_pooling must be positive")
    lo, hi = 1, max_rows
    dp_lo, tw_lo = dp_vs_tw_cost(lo, embedding_dim, avg_pooling, params)
    if dp_lo >= tw_lo:
        # DP never wins, even for a 1-row table
        return CrossoverPoint(embedding_dim, avg_pooling, 0, dp_lo, tw_lo)
    dp_hi, tw_hi = dp_vs_tw_cost(hi, embedding_dim, avg_pooling, params)
    if dp_hi < tw_hi:
        return CrossoverPoint(embedding_dim, avg_pooling, hi, dp_hi, tw_hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        dp, tw = dp_vs_tw_cost(mid, embedding_dim, avg_pooling, params)
        if dp < tw:
            lo = mid
        else:
            hi = mid
    dp, tw = dp_vs_tw_cost(lo, embedding_dim, avg_pooling, params)
    return CrossoverPoint(embedding_dim, avg_pooling, lo, dp, tw)


def crossover_sweep(dims: List[int], poolings: List[float],
                    params: CostModelParams) -> List[CrossoverPoint]:
    """Crossover table over a grid of table families."""
    return [find_dp_crossover(d, l, params)
            for d in dims for l in poolings]

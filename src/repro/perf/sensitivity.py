"""What-if sensitivity analysis over the throughput model.

The co-design question behind the whole paper: which platform resource
actually binds training throughput? This module answers it numerically —
sweep one knob of a :class:`TrainingSetup` (or of its topology), read the
QPS response, and summarize it as an *elasticity* (d log QPS / d log
knob): elasticity ~1 means throughput is proportional to the resource
(it binds), ~0 means the resource is slack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .iteration import TrainingSetup, qps

__all__ = ["SweepPoint", "sweep_knob", "elasticity", "KNOBS",
           "sensitivity_report"]

# knob name -> function(setup, value) -> new setup
KNOBS = {
    "global_batch": lambda s, v: replace(s, global_batch=int(v)),
    "load_imbalance": lambda s, v: replace(s, load_imbalance=float(v)),
    "scaleout_bw": lambda s, v: replace(
        s, topology=replace(s.topology, scaleout_bw=float(v))),
    "scaleup_bw": lambda s, v: replace(
        s, topology=replace(s.topology, scaleup_bw=float(v))),
    "hbm_fraction": lambda s, v: replace(
        s, memory_hierarchy_bw_fraction=float(v)),
}


@dataclass(frozen=True)
class SweepPoint:
    knob: str
    value: float
    qps: float


def sweep_knob(setup: TrainingSetup, knob: str,
               values: Sequence[float]) -> List[SweepPoint]:
    """Evaluate QPS at each knob value (all other settings fixed)."""
    if knob not in KNOBS:
        raise ValueError(f"unknown knob {knob!r}; expected {sorted(KNOBS)}")
    if len(values) == 0:
        raise ValueError("need at least one value")
    apply = KNOBS[knob]
    return [SweepPoint(knob=knob, value=float(v),
                       qps=qps(apply(setup, v))) for v in values]


def elasticity(points: Sequence[SweepPoint]) -> float:
    """Log-log slope of QPS vs knob across the sweep (least squares)."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    x = np.log([p.value for p in points])
    y = np.log([p.qps for p in points])
    if np.ptp(x) == 0:
        raise ValueError("knob values must vary")
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def sensitivity_report(setup: TrainingSetup,
                       span: float = 2.0,
                       points: int = 5) -> Dict[str, float]:
    """Elasticity of every knob around the given operating point.

    Each knob sweeps multiplicatively over ``[1/span, span]`` times its
    current value (imbalance and hbm_fraction are clamped to their valid
    domains). The result ranks the platform's binding resources.
    """
    if span <= 1.0 or points < 2:
        raise ValueError("span must exceed 1 and points must be >= 2")
    current = {
        "global_batch": float(setup.global_batch),
        "load_imbalance": setup.load_imbalance,
        "scaleout_bw": setup.topology.scaleout_bw,
        "scaleup_bw": setup.topology.scaleup_bw,
        "hbm_fraction": setup.memory_hierarchy_bw_fraction,
    }
    out: Dict[str, float] = {}
    for knob, center in current.items():
        values = np.geomspace(center / span, center * span, points)
        if knob == "load_imbalance":
            values = np.clip(values, 1.0, None)
        elif knob == "hbm_fraction":
            values = np.clip(values, 1e-3, 1.0)
        elif knob == "global_batch":
            # keep divisibility by world size
            w = setup.topology.world_size
            values = np.maximum(np.round(values / w), 1) * w
        values = np.unique(values)
        if len(values) < 2:
            out[knob] = 0.0
            continue
        out[knob] = elasticity(sweep_knob(setup, knob, values))
    return out

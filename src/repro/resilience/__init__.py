"""Fault-tolerant training: deterministic fault injection, retry/backoff
and checkpoint-based recovery.

At ZionEX scale a synchronous job's mean time between failures is set by
its weakest host; the paper's production fleet treats detect-restart-
resume as part of the training system, not an afterthought. This
package reproduces that discipline over the simulated cluster, in four
composable pieces:

* :mod:`~repro.resilience.faults` — *what fails when*: seedable,
  replayable :class:`FaultSchedule` of :class:`FaultSpec` entries
  (delay / drop / corrupt / crash a rank on a chosen iteration and
  collective);
* :mod:`~repro.resilience.retry` — *how failures cost time*:
  :class:`RetryPolicy` (timeout + exponential backoff + max attempts)
  and :class:`HealthTracker` (EWMA straggler detection, timeout strikes,
  rank death);
* :mod:`~repro.resilience.process_group` —
  :class:`FaultyProcessGroup`, a drop-in ``SimProcessGroup`` that
  injects scheduled faults into every collective's latency accounting
  and raises :class:`RankFailure` for dead ranks; bit-identical to the
  base group when the schedule is empty;
* :mod:`~repro.resilience.recovery` — :class:`RecoveryManager`, which
  rebuilds a trainer over the surviving (or replaced) world from the
  newest checkpoint; with the world size restored, resumed training is
  bitwise identical to an uninterrupted run.

Metrics land in the ``resilience`` registry scope
(``faults_injected``, ``retries``, ``recovery_seconds``, ...); see
``docs/resilience.md`` for the full tour.
"""

from .faults import FaultKind, FaultSchedule, FaultSpec, RankFailure
from .process_group import FaultyProcessGroup, faulty_process_group_factory
from .recovery import RecoveryError, RecoveryEvent, RecoveryManager
from .retry import HealthTracker, RetryPolicy

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultSchedule",
    "RankFailure",
    "RetryPolicy",
    "HealthTracker",
    "FaultyProcessGroup",
    "faulty_process_group_factory",
    "RecoveryError",
    "RecoveryEvent",
    "RecoveryManager",
]

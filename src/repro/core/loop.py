"""End-to-end training loop: data ingestion -> trainer -> metrics ->
checkpoints (the "overall training system" of Fig. 6).

Wires the disaggregated pieces into the production-shaped loop: the
reader service prefetches global batches, the Neo trainer consumes them
synchronously, normalized entropy is evaluated on held-out batches at a
fixed cadence, and the checkpoint manager snapshots at its own cadence —
frequent enough to bound lost work (the Check-N-Run requirement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


from ..data.datagen import SyntheticCTRDataset
from ..data.reader import DataIngestionService
from ..metrics import normalized_entropy
from .checkpoint import CheckpointManager
from .trainer import NeoTrainer

__all__ = ["TrainingResult", "TrainingLoop"]


@dataclass
class TrainingResult:
    """Everything a training run produced."""

    losses: List[float] = field(default_factory=list)
    eval_steps: List[int] = field(default_factory=list)
    eval_ne: List[float] = field(default_factory=list)
    checkpoints: List[str] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def final_ne(self) -> Optional[float]:
        return self.eval_ne[-1] if self.eval_ne else None

    @property
    def best_ne(self) -> Optional[float]:
        return min(self.eval_ne) if self.eval_ne else None


class TrainingLoop:
    """Drives a :class:`NeoTrainer` with ingestion, eval and checkpoints.

    Parameters
    ----------
    trainer:
        The distributed trainer (owns the model and optimizers).
    dataset:
        The batch source; training and eval batches come from disjoint
        index ranges so evaluation is held out.
    global_batch_size:
        Samples per synchronous iteration, split across the ranks.
    eval_every / eval_batch_size:
        Normalized-entropy evaluation cadence.
    checkpoint_manager / checkpoint_every:
        Optional checkpointing.
    patience:
        Early stopping: stop if NE fails to improve for this many
        consecutive evaluations (None disables).
    """

    EVAL_OFFSET = 1_000_000  # eval batch indices live far from training's

    def __init__(self, trainer: NeoTrainer, dataset: SyntheticCTRDataset,
                 global_batch_size: int, eval_every: int = 50,
                 eval_batch_size: int = 2048,
                 checkpoint_manager: Optional[CheckpointManager] = None,
                 checkpoint_every: int = 0,
                 patience: Optional[int] = None,
                 lr_schedulers: Optional[list] = None) -> None:
        if eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive when set")
        self.trainer = trainer
        self.ingestion = DataIngestionService(
            dataset, world_size=trainer.world_size,
            global_batch_size=global_batch_size)
        self.dataset = dataset
        self.eval_every = eval_every
        self.eval_batch_size = eval_batch_size
        self.checkpoint_manager = checkpoint_manager
        self.checkpoint_every = checkpoint_every
        self.patience = patience
        self.lr_schedulers = list(lr_schedulers or [])

    def evaluate(self, batch_index: int = 0) -> float:
        """Held-out normalized entropy of the current model."""
        model = self.trainer.to_local_model()
        batch = self.dataset.batch(self.eval_batch_size,
                                   self.EVAL_OFFSET + batch_index)
        return normalized_entropy(model.predict_proba(batch), batch.labels)

    def run(self, num_steps: int) -> TrainingResult:
        result = TrainingResult()
        best = float("inf")
        since_best = 0
        tracer = self.trainer.tracer
        for step in range(num_steps):
            with tracer.span("loop.iteration", cat="loop", step=step):
                with tracer.span("loop.ingest", cat="loop"):
                    shards = self.ingestion.next_batch()
                result.losses.append(self.trainer.train_step(shards))
                for scheduler in self.lr_schedulers:
                    scheduler.step()
                if (step + 1) % self.eval_every == 0:
                    with tracer.span("loop.eval", cat="loop"):
                        ne = self.evaluate(batch_index=step)
                    result.eval_steps.append(step + 1)
                    result.eval_ne.append(ne)
                    if ne < best - 1e-6:
                        best = ne
                        since_best = 0
                    else:
                        since_best += 1
                    if self.patience is not None and \
                            since_best >= self.patience:
                        result.stopped_early = True
                        break
                if self.checkpoint_manager is not None and \
                        self.checkpoint_every and \
                        (step + 1) % self.checkpoint_every == 0:
                    with tracer.span("loop.checkpoint", cat="loop"):
                        result.checkpoints.append(
                            self.checkpoint_manager.save(self.trainer))
        return result

"""32-way set-associative software cache for embedding rows (Section 4.1.3).

The paper replaces CUDA unified memory (UVM) with a custom software cache:

* **32-way set-associative**, matching the GPU warp size so one warp probes
  one set in parallel;
* **row granularity** — UVM moves large pages, evicting rows that are still
  hot just because they share a page with cold ones;
* **LRU or LFU** replacement, selectable per model;
* **write-back** with dirty tracking, so updated rows hit the slow tier
  once per eviction instead of once per step.

This implementation is a faithful functional model: it stores real row
data, returns exact values, and counts hits/misses/evictions/writebacks so
benchmarks can convert traffic into time via the platform bandwidth model.

It implements the :class:`repro.cache.RowCache` protocol; the constructor
form is ``capacity_rows=`` (or :func:`repro.cache.make_cache` with
``kind="set_associative"``). The pre-protocol ``num_sets=`` form was
removed after its deprecation window — passing it raises ``TypeError``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .api import CacheStats, RowCacheBase
from .backing import ArrayBackingStore

__all__ = ["CacheStats", "SetAssociativeCache"]


class SetAssociativeCache(RowCacheBase):
    """A set-associative, write-back row cache in front of a backing store.

    Parameters
    ----------
    capacity_rows:
        Fast-tier capacity in rows (the :func:`repro.cache.make_cache`
        unit). ``ways`` is clamped to the capacity and the set count is
        ``capacity_rows // ways``.
    row_dim:
        Row width ``D``; cached data is ``float32``.
    ways:
        Associativity; the paper uses 32 (one warp per set).
    policy:
        ``"lru"`` (least recently used) or ``"lfu"`` (least frequently
        used), the two policies of Section 4.1.3.
    """

    def __init__(self, row_dim: Optional[int] = None, ways: int = 32,
                 policy: str = "lru", *,
                 capacity_rows: Optional[int] = None) -> None:
        if row_dim is None:
            raise TypeError("row_dim is required")
        if capacity_rows is None:
            raise TypeError("capacity_rows is required")
        if capacity_rows <= 0:
            raise ValueError("capacity_rows must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        ways = min(ways, capacity_rows)
        num_sets = max(1, capacity_rows // ways)
        if policy not in ("lru", "lfu"):
            raise ValueError(f"policy must be 'lru' or 'lfu', got {policy!r}")
        super().__init__()
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self.row_dim = row_dim
        self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
        self.data = np.zeros((num_sets, ways, row_dim), dtype=np.float32)
        self.dirty = np.zeros((num_sets, ways), dtype=bool)
        # LRU: last-access clock; LFU: access count
        self.meta = np.zeros((num_sets, ways), dtype=np.int64)
        self._clock = 0

    @property
    def capacity_rows(self) -> int:
        return self.num_sets * self.ways

    def _set_index(self, row_id: int) -> int:
        return int(row_id) % self.num_sets

    def _touch(self, set_idx: int, way: int) -> None:
        if self.policy == "lru":
            self._clock += 1
            self.meta[set_idx, way] = self._clock
        else:  # lfu
            self.meta[set_idx, way] += 1

    def _find_way(self, set_idx: int, row_id: int) -> int:
        ways = np.nonzero(self.tags[set_idx] == row_id)[0]
        return int(ways[0]) if len(ways) else -1

    def _victim_way(self, set_idx: int) -> int:
        empty = np.nonzero(self.tags[set_idx] == -1)[0]
        if len(empty):
            return int(empty[0])
        return int(np.argmin(self.meta[set_idx]))

    def _fill(self, set_idx: int, row_id: int,
              backing: ArrayBackingStore) -> int:
        """Bring ``row_id`` into the set, evicting (and writing back) the
        replacement victim if needed. Returns the way used."""
        way = self._victim_way(set_idx)
        victim = self.tags[set_idx, way]
        if victim != -1:
            self.stats.evictions += 1
            if self.dirty[set_idx, way]:
                self.stats.writebacks += 1
                backing.write_rows(np.array([victim]),
                                   self.data[set_idx, way][None, :])
        self.tags[set_idx, way] = row_id
        self.data[set_idx, way] = backing.read_rows(np.array([row_id]))[0]
        self.dirty[set_idx, way] = False
        self.stats.fills += 1
        if self.policy == "lfu":
            self.meta[set_idx, way] = 0
        self._touch(set_idx, way)
        return way

    # ------------------------------------------------------------------
    # public interface (RowCache protocol)
    # ------------------------------------------------------------------
    def read(self, row_ids: np.ndarray,
             backing: ArrayBackingStore) -> np.ndarray:
        """Read rows through the cache; misses fetch from ``backing``."""
        out = np.empty((len(row_ids), self.row_dim), dtype=np.float32)
        for i, row_id in enumerate(np.asarray(row_ids, dtype=np.int64)):
            set_idx = self._set_index(row_id)
            way = self._find_way(set_idx, row_id)
            if way >= 0:
                self.stats.hits += 1
                self._touch(set_idx, way)
            else:
                self.stats.misses += 1
                way = self._fill(set_idx, row_id, backing)
            out[i] = self.data[set_idx, way]
        return out

    def write(self, row_ids: np.ndarray, values: np.ndarray,
              backing: ArrayBackingStore) -> None:
        """Write rows through the cache (write-back, write-allocate)."""
        for i, row_id in enumerate(np.asarray(row_ids, dtype=np.int64)):
            set_idx = self._set_index(row_id)
            way = self._find_way(set_idx, row_id)
            if way >= 0:
                self.stats.hits += 1
                self._touch(set_idx, way)
            else:
                self.stats.misses += 1
                way = self._fill(set_idx, row_id, backing)
            self.data[set_idx, way] = values[i]
            self.dirty[set_idx, way] = True

    def flush(self, backing: ArrayBackingStore) -> int:
        """Write back every dirty line; returns number written."""
        sets, ways = np.nonzero(self.dirty)
        for set_idx, way in zip(sets, ways):
            backing.write_rows(np.array([self.tags[set_idx, way]]),
                               self.data[set_idx, way][None, :])
            self.stats.writebacks += 1
        count = len(sets)
        self.dirty[:] = False
        return count

    def contains(self, row_id: int) -> bool:
        return self._find_way(self._set_index(row_id), row_id) >= 0

    def prefetch_rows(self, row_ids: np.ndarray,
                      backing: ArrayBackingStore) -> int:
        """Stage rows ahead of use: misses fill without counting as
        misses (they were never demanded), so a later :meth:`read` of the
        same ids hits. Returns rows newly made resident."""
        staged = 0
        for row_id in np.unique(np.asarray(row_ids, dtype=np.int64)):
            set_idx = self._set_index(row_id)
            if self._find_way(set_idx, row_id) >= 0:
                continue
            self._fill(set_idx, row_id, backing)
            self.stats.prefetched_rows += 1
            staged += 1
        return staged

"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md section 3 for the index). Conventions:

* each bench runs its experiment inside the ``benchmark`` fixture so
  ``pytest benchmarks/ --benchmark-only`` times the reproduction;
* paper-reported values and the model's values are attached via
  ``benchmark.extra_info`` and printed as a table, so a plain run shows
  the side-by-side comparison;
* assertions check *shape* (ordering, ratios, crossovers), not absolute
  equality — our substrate is a simulator, not the authors' testbed.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Every collected item in this directory is a benchmark entry."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def record_rows(benchmark, title, header, rows):
    """Attach a small results table to the benchmark report and print it."""
    benchmark.extra_info["title"] = title
    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]
    widths = [max(len(str(x)) for x in col)
              for col in zip(header, *[[str(c) for c in r] for r in rows])]
    lines = [title,
             "  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    print("\n" + "\n".join(lines))


@pytest.fixture
def report(benchmark):
    """Curried row recorder bound to the current benchmark."""
    def _report(title, header, rows):
        record_rows(benchmark, title, header, rows)
    return _report

"""The paper's production model zoo: A1, A2, A3 and F1 (Table 3).

Two views of each model:

* :func:`full_spec` — the full-scale configuration (trillions of
  parameters). Table shapes are synthesized to match Table 3's reported
  statistics (table count, dim range/average, pooling, total parameters).
  These drive the sharding planner, capacity studies and the performance
  model — all of which only need *shapes*, never weights.
* :func:`mini_config` — a trainable shrunken model, following the paper's
  own Section 5.3.1 methodology ("shrink the embedding table cardinality
  while hashing inputs to be within the reduced number of rows"), sized
  for laptop-scale functional experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import zlib

import numpy as np

from ..embedding import EmbeddingTableConfig
from .dlrm import DLRMConfig

__all__ = ["ModelSpec", "full_spec", "mini_config", "zoo_config",
           "MODEL_NAMES", "ZOO_SIZES", "TABLE3_REFERENCE"]

MODEL_NAMES = ("A1", "A2", "A3", "F1")

# Size tiers of the serving-zoo configs (multi-tenant fleet studies).
ZOO_SIZES = ("small", "medium", "large")

# Table 3 of the paper, verbatim: the reference the synthesized specs are
# validated against (see tests/test_models_zoo.py).
TABLE3_REFERENCE: Dict[str, dict] = {
    "A1": {"num_parameters": 95e9, "mflops_per_sample": 89,
           "num_tables": 100, "dim_range": (4, 192), "dim_avg": 68,
           "avg_pooling": 27, "num_mlp_layers": 26, "avg_mlp_size": 914},
    "A2": {"num_parameters": 793e9, "mflops_per_sample": 638,
           "num_tables": 1000, "dim_range": (4, 384), "dim_avg": 93,
           "avg_pooling": 15, "num_mlp_layers": 20, "avg_mlp_size": 3375},
    "A3": {"num_parameters": 845e9, "mflops_per_sample": 784,
           "num_tables": 1000, "dim_range": (4, 960), "dim_avg": 231,
           "avg_pooling": 17, "num_mlp_layers": 26, "avg_mlp_size": 3210},
    "F1": {"num_parameters": 12e12, "mflops_per_sample": 5,
           "num_tables": 10, "dim_range": (256, 256), "dim_avg": 256,
           "avg_pooling": 20, "num_mlp_layers": 7, "avg_mlp_size": 490},
}


@dataclass(frozen=True)
class ModelSpec:
    """Full-scale model description (shapes only, no weights)."""

    name: str
    tables: Tuple[EmbeddingTableConfig, ...]
    dense_dim: int
    mlp_layer_sizes: Tuple[int, ...]
    declared_mflops_per_sample: float

    @property
    def num_embedding_parameters(self) -> int:
        return sum(t.num_parameters for t in self.tables)

    @property
    def num_mlp_parameters(self) -> int:
        sizes = (self.dense_dim,) + self.mlp_layer_sizes
        return sum(a * b + b for a, b in zip(sizes, sizes[1:]))

    @property
    def num_parameters(self) -> int:
        return self.num_embedding_parameters + self.num_mlp_parameters

    @property
    def avg_embedding_dim(self) -> float:
        return float(np.mean([t.embedding_dim for t in self.tables]))

    @property
    def avg_pooling(self) -> float:
        return float(np.mean([t.avg_pooling for t in self.tables]))

    def mlp_flops_per_sample(self) -> float:
        """Forward+backward MLP FLOPs per sample (2 MACs fwd, 4 bwd)."""
        sizes = (self.dense_dim,) + self.mlp_layer_sizes
        fwd = sum(2 * a * b for a, b in zip(sizes, sizes[1:]))
        return 3 * fwd

    def embedding_bytes(self, bytes_per_element: int = 4) -> int:
        return self.num_embedding_parameters * bytes_per_element


def _synth_dims(rng: np.random.Generator, n: int, lo: int, hi: int,
                avg: int) -> np.ndarray:
    """Sample embedding dims in [lo, hi] (multiples of 4) averaging ~avg."""
    if lo == hi:
        return np.full(n, lo, dtype=np.int64)
    # lognormal shape clipped to the range, then nudged toward the mean
    dims = rng.lognormal(mean=np.log(avg), sigma=0.6, size=n)
    dims = np.clip((dims // 4 * 4).astype(np.int64), lo, hi)
    return dims


def _synth_rows(rng: np.random.Generator, dims: np.ndarray,
                target_params: float) -> np.ndarray:
    """Sample skewed row counts whose total H*D matches target_params."""
    raw = rng.lognormal(mean=0.0, sigma=1.2, size=len(dims))
    scale = target_params / float(np.sum(raw * dims))
    rows = np.maximum((raw * scale).astype(np.int64), 1000)
    return rows


def full_spec(name: str, seed: int = 0) -> ModelSpec:
    """Synthesize the full-scale spec for one of the Table 3 models."""
    if name not in TABLE3_REFERENCE:
        raise ValueError(f"unknown model {name!r}; expected {MODEL_NAMES}")
    ref = TABLE3_REFERENCE[name]
    # zlib.crc32 is a stable hash; builtins.hash is randomized
    # per process and would make specs differ across runs
    rng = np.random.default_rng((seed, zlib.crc32(name.encode())))
    n = ref["num_tables"]
    lo, hi = ref["dim_range"]
    dims = _synth_dims(rng, n, lo, hi, ref["dim_avg"])
    # leave a small budget for the MLP parameters
    rows = _synth_rows(rng, dims, ref["num_parameters"] * 0.995)
    if name == "F1":
        # Section 5.3.3: a few massive ~10B-row tables dominate F1
        rows = np.full(n, int(ref["num_parameters"] / (n * 256)),
                       dtype=np.int64)
    poolings = np.maximum(
        rng.poisson(ref["avg_pooling"], size=n), 1).astype(np.float64)
    tables = tuple(
        EmbeddingTableConfig(
            name=f"{name.lower()}_t{i}", num_embeddings=int(rows[i]),
            embedding_dim=int(dims[i]), avg_pooling=float(poolings[i]))
        for i in range(n))
    depth = ref["num_mlp_layers"]
    width = ref["avg_mlp_size"]
    return ModelSpec(
        name=name, tables=tables, dense_dim=width,
        mlp_layer_sizes=tuple([width] * depth),
        declared_mflops_per_sample=ref["mflops_per_sample"])


def mini_config(name: str, scale: int = 512, num_tables: int = 8,
                embedding_dim: int = 16, seed: int = 0,
                heterogeneous_dims: bool = False) -> DLRMConfig:
    """A trainable shrunken DLRM with the named model's *shape character*
    (relative pooling, MLP depth ratio) at laptop scale.

    ``scale`` is the per-table row count; inputs must be hashed into
    ``[0, scale)`` by the data generator (give it these table configs).
    ``heterogeneous_dims`` scales each table's dim within the named
    model's declared dim range (relative to its average), enabling the
    per-feature-projection path — Table 3's production reality.
    """
    if name not in TABLE3_REFERENCE:
        raise ValueError(f"unknown model {name!r}; expected {MODEL_NAMES}")
    ref = TABLE3_REFERENCE[name]
    pooling = max(2.0, ref["avg_pooling"] / 5.0)
    if heterogeneous_dims:
        rng = np.random.default_rng((seed, zlib.crc32(name.encode()), 1))
        lo, hi = ref["dim_range"]
        scale_lo = max(2, int(embedding_dim * lo / ref["dim_avg"]))
        scale_hi = max(scale_lo + 1,
                       int(embedding_dim * hi / ref["dim_avg"]))
        dims = rng.integers(scale_lo, scale_hi + 1, size=num_tables)
    else:
        dims = np.full(num_tables, embedding_dim, dtype=np.int64)
    tables = tuple(
        EmbeddingTableConfig(name=f"{name.lower()}_t{i}",
                             num_embeddings=scale,
                             embedding_dim=int(dims[i]),
                             avg_pooling=pooling)
        for i in range(num_tables))
    depth = max(2, ref["num_mlp_layers"] // 8)
    hidden = 32
    return DLRMConfig(
        dense_dim=8,
        bottom_mlp=tuple([hidden] * (depth - 1) + [embedding_dim]),
        tables=tables,
        top_mlp=tuple([hidden] * depth),
        project_features=heterogeneous_dims)


def zoo_config(size: str, seed: int = 0) -> DLRMConfig:
    """A size-tiered zoo member for multi-tenant serving studies.

    The tenancy benchmarks need co-hosted models of *different* weights
    classes — the paper's production reality where F-family and A-family
    models share infrastructure. Three tiers, each a :func:`mini_config`
    of the matching Table 3 family:

    * ``small`` — F1 shape (few tables, shallow MLP): the cheap,
      latency-critical tenant;
    * ``medium`` — A1 shape: the mid-weight tenant;
    * ``large`` — A3 shape with heterogeneous dims: the heavy tenant
      whose batches head-of-line block a naive shared fleet.
    """
    if size not in ZOO_SIZES:
        raise ValueError(f"unknown zoo size {size!r}; expected {ZOO_SIZES}")
    if size == "small":
        return mini_config("F1", scale=256, num_tables=4, embedding_dim=8,
                           seed=seed)
    if size == "medium":
        return mini_config("A1", scale=512, num_tables=8, embedding_dim=16,
                           seed=seed)
    return mini_config("A3", scale=1024, num_tables=12, embedding_dim=24,
                       seed=seed, heterogeneous_dims=True)

"""Low-precision numerics shared by embedding storage and comms quantization.

The paper uses three reduced-precision paths:

* FP16 embedding tables (Section 5.3.2) and FP16 forward AlltoAll,
* BF16 backward AlltoAll (quantized collectives, [58]),
* INT8 row-wise quantized embedding storage (mixed-precision cache, [57]).

numpy has native float16; bfloat16 is emulated bit-exactly by operating on
the upper 16 bits of the IEEE-754 float32 representation with
round-to-nearest-even, which matches hardware BF16 conversion.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "to_fp16",
    "from_fp16",
    "fp16_roundtrip",
    "to_bf16",
    "from_bf16",
    "bf16_roundtrip",
    "quantize_int8_rowwise",
    "dequantize_int8_rowwise",
    "bytes_per_element",
]

_DTYPE_BYTES = {"fp32": 4, "fp16": 2, "bf16": 2, "int8": 1}


def bytes_per_element(dtype: str) -> int:
    """Storage bytes per element for a named precision."""
    try:
        return _DTYPE_BYTES[dtype]
    except KeyError:
        raise ValueError(f"unknown precision {dtype!r}; "
                         f"expected one of {sorted(_DTYPE_BYTES)}") from None


def to_fp16(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float16)


def from_fp16(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float32)


def fp16_roundtrip(x: np.ndarray) -> np.ndarray:
    """float32 -> float16 -> float32, i.e. what an FP16 wire transfer does.

    Values beyond the fp16 range become inf, matching hardware conversion.
    """
    with np.errstate(over="ignore"):
        return x.astype(np.float16).astype(np.float32)


def to_bf16(x: np.ndarray) -> np.ndarray:
    """Convert float32 to bfloat16 stored as uint16 (upper half of fp32).

    Applies round-to-nearest-even on the truncated 16 bits, the same
    behaviour as CUDA ``__float2bfloat16``.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    bits = x.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + LSB of the surviving mantissa bit
    rounding_bias = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    rounded = bits + rounding_bias
    return (rounded >> np.uint32(16)).astype(np.uint16)


def from_bf16(x: np.ndarray) -> np.ndarray:
    """Expand uint16 bfloat16 back to float32 (exact, zero-padded mantissa)."""
    expanded = x.astype(np.uint32) << np.uint32(16)
    return expanded.view(np.float32).reshape(x.shape).copy()


def bf16_roundtrip(x: np.ndarray) -> np.ndarray:
    """float32 -> bf16 -> float32, i.e. what a BF16 wire transfer does."""
    return from_bf16(to_bf16(x))


def quantize_int8_rowwise(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise affine INT8 quantization: per-row scale and zero offset.

    Returns ``(codes, scale, offset)`` where
    ``x ~= codes * scale[:, None] + offset[:, None]``. This is the scheme of
    the FBGEMM rowwise-quantized embedding formats.
    """
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D array of rows, got shape {x.shape}")
    x = x.astype(np.float32)
    lo = x.min(axis=1)
    hi = x.max(axis=1)
    span = hi - lo
    # degenerate rows (constant) get scale 1 to avoid division by zero
    scale = np.where(span > 0, span / 255.0, 1.0).astype(np.float32)
    offset = lo.astype(np.float32)
    codes = np.clip(np.rint((x - offset[:, None]) / scale[:, None]), 0, 255)
    return codes.astype(np.uint8), scale, offset


def dequantize_int8_rowwise(codes: np.ndarray, scale: np.ndarray,
                            offset: np.ndarray) -> np.ndarray:
    return (codes.astype(np.float32) * scale[:, None] + offset[:, None])

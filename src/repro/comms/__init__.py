"""Communication layer: exact simulated collectives, wire quantization,
cluster topology and the alpha-beta latency model (paper Sections 4.5, 5.1).

The v2 process-group surface is re-exported here: typed AlltoAll dispatch
(:class:`AlltoAllKind`), accounting-carrying returns
(:class:`CollectiveResult`) and the snake-case latency-model names
(``perf_model.all_to_all_time`` et al.). The pre-v2 string
``direction=`` dispatch was removed after its deprecation window; only
the ``perf_model.alltoall_time``-style name aliases still warn. See
``docs/observability.md`` for the deprecation timeline.
"""

from . import collectives, param_bench, perf_model
from .bucketing import Bucket, GradientBucketer
from .process_group import (AlltoAllKind, CollectiveResult, CommsLog,
                            SimProcessGroup)
from .quantization import CODECS, QuantizedCommsConfig, get_codec, wire_bytes
from .topology import PROTOTYPE_TOPOLOGY, ZION_TOPOLOGY, ClusterTopology

__all__ = [
    "collectives",
    "perf_model",
    "param_bench",
    "AlltoAllKind",
    "CollectiveResult",
    "SimProcessGroup",
    "CommsLog",
    "GradientBucketer",
    "Bucket",
    "QuantizedCommsConfig",
    "CODECS",
    "get_codec",
    "wire_bytes",
    "ClusterTopology",
    "PROTOTYPE_TOPOLOGY",
    "ZION_TOPOLOGY",
]

"""Tests for the shared platform spec (Table 2 memory hierarchy).

The spec is the single source of truth for per-node HBM/DRAM capacity
and bandwidth, consumed by both training capacity sizing
(:mod:`repro.perf.online`) and serving placement
(:mod:`repro.serving.server`) — these tests pin the Table 2 numbers and
the hierarchy arithmetic both sides rely on.
"""

import pytest

from repro.perf import PlatformSpec, ZIONEX_PLATFORM
from repro.perf.online import hierarchy_bw_fraction


class TestZionexNumbers:
    def test_table2_capacities(self):
        assert ZIONEX_PLATFORM.hbm_per_node_bytes == pytest.approx(256e9)
        assert ZIONEX_PLATFORM.dram_per_node_bytes == pytest.approx(1.5e12)
        assert ZIONEX_PLATFORM.gpus_per_node == 8
        assert ZIONEX_PLATFORM.node_memory_bytes == pytest.approx(
            256e9 + 1.5e12)

    def test_bandwidths(self):
        assert ZIONEX_PLATFORM.hbm_bw_per_node == pytest.approx(850e9 * 8)
        assert ZIONEX_PLATFORM.dram_link_bw_per_node == pytest.approx(
            12e9 * 8)


class TestCapacityArithmetic:
    def test_fits(self):
        assert ZIONEX_PLATFORM.fits(100e9, nodes=1)
        assert ZIONEX_PLATFORM.fits(1.7e12, nodes=1)
        assert not ZIONEX_PLATFORM.fits(2e12, nodes=1)
        assert ZIONEX_PLATFORM.fits(2e12, nodes=2)

    def test_hbm_fraction_clamps(self):
        assert ZIONEX_PLATFORM.hbm_fraction(100e9, nodes=1) == 1.0
        assert ZIONEX_PLATFORM.hbm_fraction(512e9, nodes=1) == \
            pytest.approx(0.5)
        assert ZIONEX_PLATFORM.hbm_fraction(512e9, nodes=2) == 1.0
        assert ZIONEX_PLATFORM.hbm_fraction(0.0, nodes=4) == 1.0

    def test_hierarchy_bw_all_hbm_is_unity(self):
        assert ZIONEX_PLATFORM.hierarchy_bw_fraction(1.0) == 1.0

    def test_hierarchy_bw_degrades_with_spill(self):
        full = ZIONEX_PLATFORM.hierarchy_bw_fraction(1.0)
        half = ZIONEX_PLATFORM.hierarchy_bw_fraction(0.5)
        none = ZIONEX_PLATFORM.hierarchy_bw_fraction(0.0)
        assert full > half > none > 0.0

    def test_cache_hit_boost_helps(self):
        cold = ZIONEX_PLATFORM.hierarchy_bw_fraction(0.5, cache_hit_boost=0.0)
        warm = ZIONEX_PLATFORM.hierarchy_bw_fraction(0.5, cache_hit_boost=0.9)
        assert warm > cold

    def test_module_level_helper_delegates(self):
        assert hierarchy_bw_fraction(0.5) == \
            ZIONEX_PLATFORM.hierarchy_bw_fraction(0.5)
        custom = PlatformSpec(name="x", hbm_per_node_bytes=1e9,
                              dram_per_node_bytes=1e10,
                              hbm_bw_per_node=100e9,
                              dram_link_bw_per_node=1e9)
        assert hierarchy_bw_fraction(0.5, platform=custom) == \
            custom.hierarchy_bw_fraction(0.5)


class TestCustomSpec:
    def test_roundtrip_fields(self):
        spec = PlatformSpec(name="lab", hbm_per_node_bytes=64e9,
                            dram_per_node_bytes=512e9,
                            hbm_bw_per_node=400e9,
                            dram_link_bw_per_node=10e9, gpus_per_node=4)
        assert spec.name == "lab"
        assert spec.node_memory_bytes == pytest.approx(576e9)
        assert not spec.fits(600e9, nodes=1)
        assert spec.fits(600e9, nodes=2)

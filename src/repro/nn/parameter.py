"""Trainable parameter container used by every dense layer.

The reproduction deliberately avoids a tape-based autograd: every layer
implements an explicit ``backward`` that accumulates into ``Parameter.grad``.
This mirrors how the paper's stack separates dense parameters (synchronized
with AllReduce) from sparse embedding parameters (updated with exact sparse
optimizers), and it keeps the numerics fully inspectable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named, trainable dense tensor with an accumulated gradient.

    Parameters
    ----------
    data:
        Initial value. Stored as ``float32`` (the paper trains dense layers
        in FP32; reduced precision is applied to embeddings and comms only).
    name:
        Stable identifier, used for checkpointing and AllReduce bucketing.

    A parameter whose leading axis enumerates simulated ranks (the
    rank-stacked training mode, see :mod:`repro.nn.stacked`) carries
    ``stacked=True`` so shape-ambiguous consumers — e.g. LAMB's
    layer-wise trust ratio — know the first axis is replicas, not a
    model dimension.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.name = name
        self.stacked = False

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient, allocating on first use."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def copy(self) -> "Parameter":
        """Deep copy (used by data-parallel replication and checkpoints)."""
        clone = Parameter(self.data.copy(), self.name)
        clone.stacked = self.stacked
        if self.grad is not None:
            clone.grad = self.grad.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"

"""Per-node platform memory specification (paper Table 2).

One source of truth for "what does a node look like": HBM and DRAM
capacity, the aggregate achievable HBM bandwidth and the rate at which
the GPUs can pull embedding rows out of host DRAM. Training-side cluster
sizing (:mod:`repro.perf.online`) and serving-side capacity planning
(:mod:`repro.serving`) both read the same :class:`PlatformSpec`, so a
platform change propagates to both answers at once — previously these
numbers were private constants of the online-training module.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlatformSpec", "ZIONEX_PLATFORM"]


@dataclass(frozen=True)
class PlatformSpec:
    """Per-node memory capacities and bandwidths of one training/serving
    platform (Table 2 for ZionEX).

    ``hbm_bw_per_node`` is the *aggregate achieved* HBM bandwidth of all
    GPUs in a node; ``dram_link_bw_per_node`` is what those GPUs can
    sustain when pulling rows out of host DRAM (PCIe-limited).
    """

    name: str
    hbm_per_node_bytes: float
    dram_per_node_bytes: float
    hbm_bw_per_node: float
    dram_link_bw_per_node: float
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        for field_name in ("hbm_per_node_bytes", "dram_per_node_bytes",
                           "hbm_bw_per_node", "dram_link_bw_per_node"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")

    @property
    def node_memory_bytes(self) -> float:
        """Total per-node capacity across both tiers."""
        return self.hbm_per_node_bytes + self.dram_per_node_bytes

    def fits(self, model_bytes: float, nodes: int) -> bool:
        """Does the model fit in ``nodes`` worth of HBM+DRAM?"""
        return model_bytes <= nodes * self.node_memory_bytes

    def hbm_fraction(self, model_bytes: float, nodes: int) -> float:
        """Fraction of the model resident in HBM under waterfall placement
        (HBM fills first, the overflow spills to DRAM)."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if model_bytes <= 0:
            return 1.0
        return min(1.0, nodes * self.hbm_per_node_bytes / model_bytes)

    def hierarchy_bw_fraction(self, hbm_fraction: float,
                              cache_hit_boost: float = 0.5) -> float:
        """Effective lookup bandwidth (relative to pure HBM) when only
        ``hbm_fraction`` of the model is HBM-resident.

        Accesses to the DRAM-resident part mostly *hit the software
        cache* (hot rows get cached in HBM); ``cache_hit_boost`` is the
        fraction of DRAM-part accesses served by the cache under Zipf
        traffic. The rest crawl over the DRAM link.
        """
        if not 0.0 <= hbm_fraction <= 1.0:
            raise ValueError("hbm_fraction must be in [0, 1]")
        if not 0.0 <= cache_hit_boost < 1.0:
            raise ValueError("cache_hit_boost must be in [0, 1)")
        hbm_served = hbm_fraction + (1 - hbm_fraction) * cache_hit_boost
        link_served = 1.0 - hbm_served
        time_per_byte = hbm_served / self.hbm_bw_per_node \
            + link_served / self.dram_link_bw_per_node
        pure_hbm_time = 1.0 / self.hbm_bw_per_node
        return pure_hbm_time / time_per_byte


# The Table 2 prototype: 8 GPUs x 32 GB HBM per node, 1.5 TB host DRAM,
# 850 GB/s achieved HBM per GPU, ~12 GB/s per GPU over PCIe to DRAM.
ZIONEX_PLATFORM = PlatformSpec(
    name="ZionEX",
    hbm_per_node_bytes=256e9,
    dram_per_node_bytes=1.5e12,
    hbm_bw_per_node=850e9 * 8,
    dram_link_bw_per_node=12e9 * 8,
    gpus_per_node=8,
)

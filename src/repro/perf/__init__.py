"""Performance models: device rooflines, operator benchmarks, the
end-to-end throughput model, capacity arithmetic and platform demand
(paper Section 5 and Appendix A)."""

from .capacity import (PROTOTYPE_CLUSTER_MEMORY, ClusterMemory,
                       MemoryFootprint, capacity_ladder, model_footprint)
from .crossover import (CrossoverPoint, crossover_sweep, dp_vs_tw_cost,
                        find_dp_crossover)
from .devices import A100, CPU_SKYLAKE, DEVICES, V100, DeviceSpec
from .embedding_bw import (embedding_achieved_bw, embedding_lookup_time,
                           embedding_update_time, fused_lookup_time,
                           fused_speedup, unfused_lookup_time)
from .gemm import MLPBenchResult, gemm_tflops, gemm_time, mlp_benchmark, \
    mlp_time
from .online import (NodeSizing, hierarchy_bw_fraction, min_nodes_for,
                     sizing_sweep)
from .platform import ZIONEX_PLATFORM, PlatformSpec
from .iteration import (TrainingSetup, component_times, iteration_time,
                        latency_breakdown, plan_imbalance, qps,
                        weak_scaling_curve)
from .requirements import TABLE1_REFERENCE, PlatformDemand, derive_demand
from .sensitivity import (KNOBS, SweepPoint, elasticity,
                          sensitivity_report, sweep_knob)
from .timeline import render_timeline

__all__ = [
    "DeviceSpec",
    "V100",
    "A100",
    "CPU_SKYLAKE",
    "DEVICES",
    "gemm_time",
    "gemm_tflops",
    "mlp_time",
    "mlp_benchmark",
    "MLPBenchResult",
    "embedding_achieved_bw",
    "embedding_lookup_time",
    "embedding_update_time",
    "fused_lookup_time",
    "unfused_lookup_time",
    "fused_speedup",
    "TrainingSetup",
    "component_times",
    "iteration_time",
    "latency_breakdown",
    "qps",
    "weak_scaling_curve",
    "plan_imbalance",
    "MemoryFootprint",
    "model_footprint",
    "ClusterMemory",
    "PROTOTYPE_CLUSTER_MEMORY",
    "capacity_ladder",
    "PlatformDemand",
    "derive_demand",
    "TABLE1_REFERENCE",
    "CrossoverPoint",
    "dp_vs_tw_cost",
    "find_dp_crossover",
    "crossover_sweep",
    "PlatformSpec",
    "ZIONEX_PLATFORM",
    "NodeSizing",
    "hierarchy_bw_fraction",
    "min_nodes_for",
    "sizing_sweep",
    "render_timeline",
    "SweepPoint",
    "sweep_knob",
    "elasticity",
    "sensitivity_report",
    "KNOBS",
]

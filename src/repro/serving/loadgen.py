"""Seedable open-loop Poisson load generation and SLO reporting.

An *open-loop* generator emits arrivals from a Poisson process at the
offered rate regardless of how the server keeps up — the honest way to
measure tail latency (closed-loop generators self-throttle and hide
queueing collapse). Requests are single-user samples drawn from the
same synthetic CTR distribution training uses, so embedding id
popularity keeps its Zipf skew and the serving cache tier sees
realistic hot sets.

The report answers the SLO question directly: latency percentiles over
completed requests, goodput (completed-within-SLO per second of
makespan), shed rate from admission control, and SLO attainment. Same
seed, same policy, same report — bit for bit.

This module is also the trace-generation substrate of the multi-replica
fleet (:mod:`repro.fleet`): every arrival process there — the diurnal
day-curve, per-replica sub-streams, the Zipf user population — is built
from the same seeded primitives (``stream`` sub-streams of one seed,
:func:`requests_from_arrivals`), and per-replica results merge back into
one fleet-level report through :meth:`LoadReport.merge` with *exact*
percentiles over the pooled latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.datagen import SyntheticCTRDataset
from .batcher import InferenceRequest
from .server import InferenceServer, ServeResult

__all__ = ["PoissonLoadGen", "LoadReport", "run_load_test",
           "requests_from_arrivals", "ARRIVAL_STREAM", "USER_STREAM",
           "ROUTER_STREAM"]

# Named rng sub-streams derived from one user-facing seed. The arrival
# stream value predates the naming (it was the loadgen's inline
# constant), so the default-config Poisson trace is bitwise-identical to
# every report shipped before the fleet existed.
ARRIVAL_STREAM = 0xA881   # inter-arrival gaps
USER_STREAM = 0xA882      # fleet Zipf user-population draws
ROUTER_STREAM = 0xA883    # fleet power-of-two-choices picks


def requests_from_arrivals(dataset: SyntheticCTRDataset,
                           arrivals: np.ndarray, batch_index: int,
                           start_id: int = 0,
                           user_rows: Optional[np.ndarray] = None
                           ) -> List[InferenceRequest]:
    """One single-sample request per arrival time, contents drawn from
    ``dataset`` in a single bulk generation (deterministic in
    ``batch_index``).

    This is the one place requests are materialized — the flat Poisson
    generator and the fleet's diurnal/Zipf traffic both funnel through
    it, so their sample-content arithmetic cannot drift apart.

    ``user_rows``, if given, maps request ``i`` to row ``user_rows[i]``
    of the bulk draw (sized to ``max(user_rows) + 1`` samples) instead of
    the identity mapping — this is how a Zipf user population makes hot
    users *recur*: the same user always resubmits the identical sample,
    which is exactly what makes replica-local caches measurable.
    ``user_id`` on each request records the row.
    """
    n = len(arrivals)
    if user_rows is None:
        bulk = dataset.batch(n, batch_index=batch_index)
        return [InferenceRequest(request_id=start_id + i,
                                 arrival_s=float(arrivals[i]),
                                 batch=bulk.slice(i, i + 1))
                for i in range(n)]
    user_rows = np.asarray(user_rows, dtype=np.int64)
    if len(user_rows) != n:
        raise ValueError(f"user_rows has {len(user_rows)} entries for "
                         f"{n} arrivals")
    bulk = dataset.batch(int(user_rows.max()) + 1, batch_index=batch_index)
    return [InferenceRequest(request_id=start_id + i,
                             arrival_s=float(arrivals[i]),
                             batch=bulk.slice(int(user_rows[i]),
                                              int(user_rows[i]) + 1),
                             user_id=int(user_rows[i]))
            for i in range(n)]


@dataclass(frozen=True)
class PoissonLoadGen:
    """Open-loop Poisson arrival generator over a synthetic CTR dataset.

    ``stream`` selects a named rng sub-stream of ``seed`` so several
    independent traces (per fleet replica, per traffic component) can
    share one seed without correlating; the default is the historical
    arrival stream, preserving every pre-fleet trace bitwise.
    """

    qps: float
    num_requests: int
    seed: int = 0
    start_s: float = 0.0
    stream: int = ARRIVAL_STREAM

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")

    @classmethod
    def for_duration(cls, qps: float, duration_s: float, seed: int = 0,
                     start_s: float = 0.0,
                     stream: int = ARRIVAL_STREAM) -> "PoissonLoadGen":
        """A generator sized to cover ``duration_s`` of virtual time at
        the offered rate (expected arrival count, at least one request).

        The co-simulation uses this to stretch serving traffic over a
        training run's makespan; being a Poisson process, the actual
        last arrival lands near — not exactly at — the horizon.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return cls(qps=qps, num_requests=max(1, int(round(qps * duration_s))),
                   seed=seed, start_s=start_s, stream=stream)

    def arrival_times(self) -> np.ndarray:
        """Cumulative exponential inter-arrival gaps at rate ``qps``."""
        rng = np.random.default_rng((self.seed, self.stream))
        gaps = rng.exponential(1.0 / self.qps, size=self.num_requests)
        return self.start_s + np.cumsum(gaps)

    def requests(self, dataset: SyntheticCTRDataset
                 ) -> List[InferenceRequest]:
        """One single-sample request per arrival, ids drawn Zipf-skewed
        from ``dataset`` (deterministic in ``seed``)."""
        # one bulk draw, then per-request single-sample slices: much
        # cheaper than num_requests independent batch(1) generations
        return requests_from_arrivals(dataset, self.arrival_times(),
                                      batch_index=self.seed)


@dataclass(frozen=True)
class LoadReport:
    """SLO-facing summary of one load-test run.

    ``first_arrival_s``/``last_completion_s`` bound the run on the
    virtual clock (so reports merge with exact makespans);
    ``samples_s``, populated under ``keep_samples``, carries the
    completed-request latency samples :meth:`merge` pools for exact
    fleet-level percentiles.
    """

    offered_qps: float
    num_offered: int
    num_completed: int
    num_shed: int
    slo_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    max_s: float
    goodput_qps: float       # completed-within-SLO per second of makespan
    completed_qps: float     # all completions per second of makespan
    slo_attainment: float    # fraction of *offered* requests inside SLO
    makespan_s: float
    mean_batch_samples: float
    first_arrival_s: float = 0.0
    last_completion_s: float = 0.0
    samples_s: Optional[Tuple[float, ...]] = None

    @property
    def shed_fraction(self) -> float:
        return self.num_shed / self.num_offered if self.num_offered else 0.0

    def without_samples(self) -> "LoadReport":
        """A copy with the raw latency samples dropped — every derived
        statistic untouched. The fleet's N=1 parity gate compares one of
        these against the sample-free single-server report."""
        return replace(self, samples_s=None)

    @classmethod
    def merge(cls, reports: Sequence["LoadReport"]) -> "LoadReport":
        """Aggregate per-replica (or per-window) reports exactly.

        Percentiles/mean/max come from the *pooled* latency samples —
        every input must have been summarized with ``keep_samples`` —
        so the merged report is identical to summarizing one combined
        run, not an approximation from per-replica quantiles. Counts and
        offered rates sum; the makespan spans the earliest first arrival
        to the latest last completion; ``mean_batch_samples`` is
        completion-weighted. All inputs must share one SLO.
        """
        reports = list(reports)
        if not reports:
            raise ValueError("need at least one report to merge")
        slo_s = reports[0].slo_s
        if any(r.slo_s != slo_s for r in reports):
            raise ValueError("cannot merge reports with different SLOs")
        if any(r.samples_s is None for r in reports):
            raise ValueError("merge needs keep_samples=True reports "
                             "(samples_s missing)")
        samples: Tuple[float, ...] = tuple(
            s for r in reports for s in r.samples_s)
        lat = np.array(samples, dtype=np.float64)
        num_offered = sum(r.num_offered for r in reports)
        num_completed = sum(r.num_completed for r in reports)
        if num_completed != len(samples):
            raise ValueError(
                f"sample count {len(samples)} != completed {num_completed}")
        num_shed = sum(r.num_shed for r in reports)
        active = [r for r in reports if r.num_completed]
        first = min((r.first_arrival_s for r in active), default=0.0)
        last = max((r.last_completion_s for r in active), default=0.0)
        makespan = last - first
        within = int(np.sum(lat <= slo_s)) if len(lat) else 0
        # completion-weighted mean batch width; taken verbatim from a
        # sole contributor so a single-replica merge is bitwise (the
        # weighted round trip (m*n)/n can perturb the last ulp)
        if len(active) == 1:
            mean_batch = active[0].mean_batch_samples
        elif num_completed:
            mean_batch = sum(r.mean_batch_samples * r.num_completed
                             for r in reports) / num_completed
        else:
            mean_batch = 0.0
        return cls(
            offered_qps=sum(r.offered_qps for r in reports),
            num_offered=num_offered,
            num_completed=num_completed,
            num_shed=num_shed,
            slo_s=slo_s,
            p50_s=float(np.percentile(lat, 50)) if len(lat) else 0.0,
            p95_s=float(np.percentile(lat, 95)) if len(lat) else 0.0,
            p99_s=float(np.percentile(lat, 99)) if len(lat) else 0.0,
            mean_s=float(lat.mean()) if len(lat) else 0.0,
            max_s=float(lat.max()) if len(lat) else 0.0,
            goodput_qps=within / makespan if makespan > 0 else 0.0,
            completed_qps=num_completed / makespan if makespan > 0 else 0.0,
            slo_attainment=within / num_offered if num_offered else 0.0,
            makespan_s=makespan,
            mean_batch_samples=mean_batch,
            first_arrival_s=first,
            last_completion_s=last,
            samples_s=samples)

    def row(self) -> List[str]:
        """Compact table row for CLI / bench output."""
        return [f"{self.offered_qps:.0f}",
                f"{self.completed_qps:.0f}",
                f"{self.goodput_qps:.0f}",
                f"{self.p50_s * 1e3:.2f}",
                f"{self.p99_s * 1e3:.2f}",
                f"{100 * self.slo_attainment:.1f}%",
                f"{self.shed_fraction * 100:.1f}%",
                f"{self.mean_batch_samples:.1f}"]

    ROW_HEADER = ["offered qps", "completed qps", "goodput qps",
                  "p50 ms", "p99 ms", "SLO att.", "shed", "avg batch"]


def summarize(result: ServeResult, offered_qps: float, num_offered: int,
              slo_s: float, keep_samples: bool = False) -> LoadReport:
    """Reduce a :class:`ServeResult` to the SLO-facing report.

    ``keep_samples`` stores the per-request latency samples on the
    report so fleet-level :meth:`LoadReport.merge` can compute exact
    pooled percentiles; the default drops them (scalar-only reports,
    as before).
    """
    lat = result.latencies_s()
    makespan = result.makespan_s()
    within = int(np.sum(lat <= slo_s)) if len(lat) else 0
    batch_sizes = [o.batch_samples for o in result.outcomes]
    return LoadReport(
        offered_qps=offered_qps,
        num_offered=num_offered,
        num_completed=result.num_completed,
        num_shed=result.num_shed,
        slo_s=slo_s,
        p50_s=result.percentile_s(50),
        p95_s=result.percentile_s(95),
        p99_s=result.percentile_s(99),
        mean_s=float(lat.mean()) if len(lat) else 0.0,
        max_s=float(lat.max()) if len(lat) else 0.0,
        goodput_qps=within / makespan if makespan > 0 else 0.0,
        completed_qps=result.num_completed / makespan
        if makespan > 0 else 0.0,
        slo_attainment=within / num_offered if num_offered else 0.0,
        makespan_s=makespan,
        mean_batch_samples=float(np.mean(batch_sizes))
        if batch_sizes else 0.0,
        first_arrival_s=min((o.arrival_s for o in result.outcomes),
                            default=0.0),
        last_completion_s=max((o.completion_s for o in result.outcomes),
                              default=0.0),
        samples_s=tuple(float(v) for v in lat) if keep_samples else None)


def run_load_test(server: InferenceServer, dataset: SyntheticCTRDataset,
                  qps: float, num_requests: int, slo_s: float,
                  seed: int = 0,
                  result_out: Optional[list] = None,
                  keep_samples: bool = False) -> LoadReport:
    """Generate a Poisson trace, serve it, and report against the SLO.

    ``result_out``, if given, receives the raw :class:`ServeResult` as
    its single element (for callers that also want responses/outcomes).
    """
    if slo_s <= 0:
        raise ValueError("slo_s must be positive")
    gen = PoissonLoadGen(qps=qps, num_requests=num_requests, seed=seed)
    requests = gen.requests(dataset)
    result = server.serve(requests)
    if result_out is not None:
        result_out.append(result)
    return summarize(result, offered_qps=qps, num_offered=num_requests,
                     slo_s=slo_s, keep_samples=keep_samples)

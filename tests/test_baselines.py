"""Tests for the async parameter-server and Zion baselines."""

import numpy as np
import pytest

from repro.baselines import (AsyncPSTrainer, ZionSetup, ps_throughput_qps,
                             zion_iteration_time, zion_qps,
                             zion_vs_zionex_scaling)
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig
from repro.metrics import normalized_entropy
from repro.models import DLRMConfig, full_spec


def small_config(num_tables=2, h=64, d=8):
    tables = tuple(EmbeddingTableConfig(f"t{i}", h, d, avg_pooling=3.0)
                   for i in range(num_tables))
    return DLRMConfig(dense_dim=4, bottom_mlp=(16, d), tables=tables,
                      top_mlp=(16,))


class TestAsyncPSTrainer:
    def test_step_returns_loss(self):
        cfg = small_config()
        trainer = AsyncPSTrainer(cfg, num_trainers=4)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        loss = trainer.step(ds.batch(16))
        assert np.isfinite(loss)
        assert trainer.clock == 1

    def test_gradients_delayed_by_staleness(self):
        """Weights unchanged until the staleness window elapses."""
        cfg = small_config()
        trainer = AsyncPSTrainer(cfg, num_trainers=4, staleness=3)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        before = trainer._ps_model.embeddings.table("t0").weight.copy()
        trainer.step(ds.batch(8, 0))
        np.testing.assert_array_equal(
            trainer._ps_model.embeddings.table("t0").weight, before)
        for i in range(4):
            trainer.step(ds.batch(8, 1 + i))
        assert not np.array_equal(
            trainer._ps_model.embeddings.table("t0").weight, before)

    def test_zero_staleness_applies_next_step(self):
        cfg = small_config()
        trainer = AsyncPSTrainer(cfg, num_trainers=2, staleness=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        before = trainer._ps_model.embeddings.table("t0").weight.copy()
        trainer.step(ds.batch(8, 0))
        trainer.step(ds.batch(8, 1))
        assert not np.array_equal(
            trainer._ps_model.embeddings.table("t0").weight, before)

    def test_training_learns(self):
        """Async PS still learns the synthetic task (NE < 1)."""
        cfg = small_config(h=64)
        trainer = AsyncPSTrainer(cfg, num_trainers=4, lr=0.05, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, noise=0.2, seed=1)
        trainer.train(ds, batch_size=32, num_steps=200)
        model = trainer.snapshot()
        test = ds.batch(2048, 99_999)
        ne = normalized_entropy(model.predict_proba(test), test.labels)
        assert ne < 0.99

    @pytest.mark.slow
    def test_staleness_hurts_quality(self):
        """The Section 2 motivation: more async staleness, worse model."""
        cfg = small_config(h=64)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, noise=0.2, seed=1)
        nes = {}
        for staleness in (0, 64):
            trainer = AsyncPSTrainer(cfg, num_trainers=4, lr=0.2,
                                     staleness=staleness, seed=0)
            trainer.train(ds, batch_size=16, num_steps=300)
            model = trainer.snapshot()
            test = ds.batch(4096, 99_999)
            nes[staleness] = normalized_entropy(
                model.predict_proba(test), test.labels)
        assert nes[64] > nes[0]

    def test_validation(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            AsyncPSTrainer(cfg, num_trainers=0)
        with pytest.raises(ValueError):
            AsyncPSTrainer(cfg, staleness=-1)
        with pytest.raises(ValueError):
            AsyncPSTrainer(cfg, easgd_alpha=0.0)
        with pytest.raises(ValueError):
            AsyncPSTrainer(cfg, sync_period=0)

    def test_snapshot_does_not_mutate(self):
        cfg = small_config()
        trainer = AsyncPSTrainer(cfg, num_trainers=2)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        trainer.train(ds, batch_size=8, num_steps=5)
        snap = trainer.snapshot()
        snap.embeddings.table("t0").weight[:] = 0
        assert not np.array_equal(
            trainer._ps_model.embeddings.table("t0").weight,
            snap.embeddings.table("t0").weight)


class TestPSThroughputModel:
    def test_a1_3x_claim(self):
        """Table 4: A1 at 16 GPUs (273K) is ~3x the CPU PS system."""
        cpu_qps = ps_throughput_qps(full_spec("A1"), num_trainers=16,
                                    num_ps=16)
        assert 273e3 / 6 < cpu_qps < 273e3  # CPU clearly slower, right scale

    def test_scales_with_trainers(self):
        spec = full_spec("A1")
        assert ps_throughput_qps(spec, num_trainers=32) > \
            ps_throughput_qps(spec, num_trainers=16)

    def test_validation(self):
        with pytest.raises(ValueError):
            ps_throughput_qps(full_spec("A1"), num_trainers=0)


class TestZionModel:
    def test_single_node_iteration_positive(self):
        setup = ZionSetup(spec=full_spec("A1"), num_nodes=1,
                          global_batch=4096)
        assert zion_iteration_time(setup) > 0

    def test_zionex_wins_at_scale(self):
        """Section 3.1: ZionEX scales, Zion does not."""
        curves = zion_vs_zionex_scaling(full_spec("A2"), [1, 2, 4, 8, 16])
        # at 16 nodes ZionEX clearly ahead
        assert curves["zionex"][16] > 2 * curves["zion"][16]

    def test_zion_scaling_degrades(self):
        """Section 3.1: Zion is 'very difficult to scale out' — its
        weak-scaling efficiency drops well below 1 and its absolute
        throughput falls far behind ZionEX at cluster scale. (Relative
        efficiency alone can flatter Zion because its single-node
        baseline is already DRAM/PCIe-bound.)"""
        curves = zion_vs_zionex_scaling(full_spec("A2"), [1, 16])
        zion_eff = curves["zion"][16] / (16 * curves["zion"][1])
        assert zion_eff < 0.75
        assert curves["zion"][16] < 0.5 * curves["zionex"][16]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZionSetup(spec=full_spec("A1"), num_nodes=0)
        with pytest.raises(ValueError):
            ZionSetup(spec=full_spec("A1"), num_nodes=3,
                      global_batch=65537)

"""Section 4.2.5 (X3): placement heuristics — greedy vs Karmarkar-Karp
(LDM) vs naive round-robin, on realistic skewed table-cost distributions.

Paper claim: LDM "usually works better than the greedy heuristic"; both
far outclass naive placement. Measured on lognormal cost instances shaped
like the A2 model's table distribution.
"""

import numpy as np
import pytest

from repro.models import full_spec
from repro.sharding import (CostModelParams, greedy_partition, ldm_partition,
                            round_robin_partition, table_cost)

BINS = 128
TRIALS = 50


def synthetic_instances():
    """Instances shaped like A2: many tables per bin (400 tables, 16
    bins), lognormal cost skew. With fewer items than bins no heuristic
    can balance (a single huge table pins the max), so the interesting
    regime is tables >> bins."""
    rng = np.random.default_rng(0)
    bins = 16
    results = {"round_robin": [], "greedy": [], "ldm": []}
    for _ in range(TRIALS):
        costs = rng.lognormal(mean=2.0, sigma=1.0, size=400).tolist()
        results["round_robin"].append(
            round_robin_partition(costs, bins).imbalance)
        results["greedy"].append(greedy_partition(costs, bins).imbalance)
        results["ldm"].append(ldm_partition(costs, bins).imbalance)
    return {k: (float(np.mean(v)), float(np.max(v)))
            for k, v in results.items()}


def test_partitioners_on_synthetic(benchmark, report):
    stats = benchmark.pedantic(synthetic_instances, rounds=1, iterations=1)
    rows = [(name, f"{mean:.3f}", f"{worst:.3f}")
            for name, (mean, worst) in stats.items()]
    report("Section 4.2.5: load imbalance (max/mean) across 50 instances",
           ["heuristic", "mean imbalance", "worst imbalance"], rows)
    assert stats["ldm"][0] <= stats["greedy"][0] * 1.001
    assert stats["greedy"][0] < stats["round_robin"][0]
    # optimized placement is near-perfect in the tables >> bins regime
    assert stats["ldm"][0] < 1.1


def test_partitioners_on_model_a2(benchmark, report):
    """Same comparison on the actual A2 table costs (Sec 3.0.1 model)."""
    spec = full_spec("A2")
    params = CostModelParams(global_batch=65536, world_size=BINS)

    def run():
        costs = [table_cost(t, params) for t in spec.tables]
        return {
            "round_robin": round_robin_partition(costs, BINS).imbalance,
            "greedy": greedy_partition(costs, BINS).imbalance,
            "ldm": ldm_partition(costs, BINS).imbalance,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Placement quality on model A2's 1000 tables, 128 GPUs",
           ["heuristic", "imbalance (max/mean)"],
           [(k, f"{v:.3f}") for k, v in result.items()])
    assert result["ldm"] <= result["greedy"] * 1.01
    assert result["ldm"] < result["round_robin"]

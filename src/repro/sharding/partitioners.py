"""Placement algorithms: greedy bin packing and Karmarkar-Karp LDM
(paper Section 4.2.5).

Both solve the multi-way number partitioning problem: distribute items
with costs across ``k`` bins minimizing the spread between the heaviest
and lightest bin. Greedy (longest processing time first) is the simple
heuristic; the largest differencing method (LDM / Karmarkar-Karp) usually
achieves tighter balance, which the paper confirms in practice.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Assignment", "round_robin_partition", "greedy_partition",
           "ldm_partition", "partition_quality"]


@dataclass
class Assignment:
    """Result of partitioning: ``bins[i]`` holds the item indices assigned
    to bin ``i``; ``loads[i]`` their summed cost."""

    bins: List[List[int]]
    loads: List[float]

    @property
    def spread(self) -> float:
        return max(self.loads) - min(self.loads)

    @property
    def imbalance(self) -> float:
        """max/mean load ratio; 1.0 is perfect balance."""
        mean = sum(self.loads) / len(self.loads)
        return max(self.loads) / mean if mean > 0 else 1.0


def _validate(costs: Sequence[float], num_bins: int) -> None:
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if any(c < 0 for c in costs):
        raise ValueError("costs must be non-negative")


def round_robin_partition(costs: Sequence[float],
                          num_bins: int) -> Assignment:
    """Naive cost-oblivious placement: item ``i`` goes to bin ``i % k``.

    This is what an unoptimized sharder does and serves as the Fig. 13
    baseline; with skewed table costs it leaves severe imbalance.
    """
    _validate(costs, num_bins)
    bins: List[List[int]] = [[] for _ in range(num_bins)]
    for i in range(len(costs)):
        bins[i % num_bins].append(i)
    loads = [sum(costs[i] for i in b) for b in bins]
    return Assignment(bins=bins, loads=loads)


def greedy_partition(costs: Sequence[float], num_bins: int) -> Assignment:
    """Longest-processing-time greedy: sort descending, place each item on
    the currently lightest bin."""
    _validate(costs, num_bins)
    order = sorted(range(len(costs)), key=lambda i: costs[i], reverse=True)
    bins: List[List[int]] = [[] for _ in range(num_bins)]
    # heap of (load, bin_index)
    heap = [(0.0, b) for b in range(num_bins)]
    heapq.heapify(heap)
    for item in order:
        load, b = heapq.heappop(heap)
        bins[b].append(item)
        heapq.heappush(heap, (load + costs[item], b))
    loads = [sum(costs[i] for i in b) for b in bins]
    return Assignment(bins=bins, loads=loads)


def ldm_partition(costs: Sequence[float], num_bins: int) -> Assignment:
    """Karmarkar-Karp largest differencing method, k-way generalization.

    Each item starts as a k-tuple of bins (item alone in one bin). The two
    tuples with the largest spread are repeatedly merged — heaviest bin of
    one with lightest bin of the other — which "differences away" the
    largest imbalances first.
    """
    _validate(costs, num_bins)
    if not costs:
        return Assignment(bins=[[] for _ in range(num_bins)],
                          loads=[0.0] * num_bins)
    counter = itertools.count()
    # heap entries: (-spread, tiebreak, loads_desc, bins) with loads sorted
    # descending so merging pairs heaviest with lightest.
    heap = []
    for i, c in enumerate(costs):
        loads = [float(c)] + [0.0] * (num_bins - 1)
        bins: List[List[int]] = [[i]] + [[] for _ in range(num_bins - 1)]
        heapq.heappush(heap, (-(loads[0] - loads[-1]), next(counter),
                              loads, bins))
    while len(heap) > 1:
        _, _, loads_a, bins_a = heapq.heappop(heap)
        _, _, loads_b, bins_b = heapq.heappop(heap)
        # combine: heaviest of A with lightest of B, etc.
        merged = [(loads_a[j] + loads_b[num_bins - 1 - j],
                   bins_a[j] + bins_b[num_bins - 1 - j])
                  for j in range(num_bins)]
        merged.sort(key=lambda t: t[0], reverse=True)
        loads = [m[0] for m in merged]
        bins = [m[1] for m in merged]
        heapq.heappush(heap, (-(loads[0] - loads[-1]), next(counter),
                              loads, bins))
    _, _, loads, bins = heap[0]
    return Assignment(bins=list(bins), loads=list(loads))


def partition_quality(costs: Sequence[float], num_bins: int) -> dict:
    """Compare greedy vs LDM on one instance (bench X3 helper)."""
    greedy = greedy_partition(costs, num_bins)
    ldm = ldm_partition(costs, num_bins)
    return {
        "greedy_spread": greedy.spread,
        "ldm_spread": ldm.spread,
        "greedy_imbalance": greedy.imbalance,
        "ldm_imbalance": ldm.imbalance,
    }

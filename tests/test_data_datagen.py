"""Tests for synthetic CTR data generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import MiniBatch, SyntheticCTRDataset, zipf_indices
from repro.embedding import EmbeddingTableConfig


def make_tables(n=3, h=1000, pooling=5.0):
    return [EmbeddingTableConfig(f"t{i}", h, 8, avg_pooling=pooling)
            for i in range(n)]


class TestZipf:
    def test_range(self):
        rng = np.random.default_rng(0)
        ids = zipf_indices(100, 10_000, rng)
        assert ids.min() >= 0 and ids.max() < 100

    def test_skew(self):
        """Low ids (popular) dominate under Zipf."""
        rng = np.random.default_rng(1)
        ids = zipf_indices(1000, 100_000, rng, alpha=1.2)
        top10 = np.sum(ids < 10) / len(ids)
        assert top10 > 0.2

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert len(zipf_indices(10, 0, rng)) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_indices(0, 10, np.random.default_rng(0))

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=25)
    def test_bounds_property(self, n):
        ids = zipf_indices(n, 200, np.random.default_rng(n))
        assert np.all((0 <= ids) & (ids < n))


class TestDataset:
    def test_batch_shapes(self):
        ds = SyntheticCTRDataset(make_tables(), dense_dim=6)
        b = ds.batch(32)
        assert b.dense.shape == (32, 6)
        assert b.labels.shape == (32,)
        assert set(b.sparse) == {"t0", "t1", "t2"}
        for indices, offsets in b.sparse.values():
            assert len(offsets) == 33
            assert offsets[-1] == len(indices)

    def test_deterministic(self):
        ds1 = SyntheticCTRDataset(make_tables(), seed=7)
        ds2 = SyntheticCTRDataset(make_tables(), seed=7)
        b1, b2 = ds1.batch(16, 3), ds2.batch(16, 3)
        np.testing.assert_array_equal(b1.dense, b2.dense)
        np.testing.assert_array_equal(b1.labels, b2.labels)
        for name in b1.sparse:
            np.testing.assert_array_equal(b1.sparse[name][0],
                                          b2.sparse[name][0])

    def test_different_batches_differ(self):
        ds = SyntheticCTRDataset(make_tables())
        b0, b1 = ds.batch(16, 0), ds.batch(16, 1)
        assert not np.array_equal(b0.dense, b1.dense)

    def test_labels_binary(self):
        ds = SyntheticCTRDataset(make_tables())
        b = ds.batch(256)
        assert set(np.unique(b.labels)) <= {0.0, 1.0}

    def test_pooling_sizes_near_configured(self):
        tables = make_tables(pooling=10.0)
        ds = SyntheticCTRDataset(tables)
        b = ds.batch(2048)
        for name in b.sparse:
            indices, offsets = b.sparse[name]
            mean_l = np.diff(offsets).mean()
            assert mean_l == pytest.approx(10.0, rel=0.15)

    def test_labels_are_learnable(self):
        """A logistic model on the planted features beats base rate —
        sanity check that the teacher actually injects signal."""
        ds = SyntheticCTRDataset(make_tables(n=1, h=50), dense_dim=4,
                                 noise=0.1, seed=1)
        b = ds.batch(4096)
        # the dense weights alone should correlate with labels
        proj = b.dense @ ds._dense_weights
        pos = proj[b.labels == 1].mean()
        neg = proj[b.labels == 0].mean()
        assert pos > neg + 0.3

    def test_base_rate_sane(self):
        ds = SyntheticCTRDataset(make_tables())
        rate = ds.base_rate()
        assert 0.05 < rate < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCTRDataset([])
        with pytest.raises(ValueError):
            SyntheticCTRDataset(make_tables(), dense_dim=0)
        ds = SyntheticCTRDataset(make_tables())
        with pytest.raises(ValueError):
            ds.batch(0)


class TestMiniBatch:
    def make_batch(self):
        ds = SyntheticCTRDataset(make_tables(), dense_dim=4)
        return ds.batch(16)

    def test_slice_rebases_offsets(self):
        b = self.make_batch()
        s = b.slice(4, 8)
        assert s.batch_size == 4
        for indices, offsets in s.sparse.values():
            assert offsets[0] == 0
            assert offsets[-1] == len(indices)

    def test_split_preserves_content(self):
        b = self.make_batch()
        parts = b.split(4)
        assert len(parts) == 4
        np.testing.assert_array_equal(
            np.concatenate([p.dense for p in parts]), b.dense)
        np.testing.assert_array_equal(
            np.concatenate([p.labels for p in parts]), b.labels)
        for name in b.sparse:
            joined = np.concatenate([p.sparse[name][0] for p in parts])
            np.testing.assert_array_equal(joined, b.sparse[name][0])

    def test_split_requires_divisibility(self):
        b = self.make_batch()
        with pytest.raises(ValueError):
            b.split(5)

    def test_slices_are_copies(self):
        b = self.make_batch()
        s = b.slice(0, 4)
        s.dense[0, 0] = 999.0
        assert b.dense[0, 0] != 999.0

"""Section 4.1.3 (X2): the 32-way software cache vs a UVM page cache.

Both caches get identical capacity and replay the same Zipf-skewed DLRM
access trace. The paper's claims to reproduce:

* the row-granular cache achieves a higher hit rate (UVM drags whole
  pages for scattered hot rows);
* converting saved PCIe traffic into time at Table 2 bandwidths yields an
  end-to-end win of the ~15% order;
* LFU and LRU are both supported and behave sanely on a skewed trace.
"""

import numpy as np
import pytest

from repro.cache import (ArrayBackingStore, SetAssociativeCache,
                         UVMPageCache)
from repro.data import zipf_indices

ROWS = 100_000
DIM = 32
CAPACITY = 8192
TRACE_STEPS = 30
IDS_PER_STEP = 2048
PCIE_BW = 12e9
HBM_BW = 850e9


def run_trace(cache, backing, rng, permutation):
    """Replay a Zipf trace with *hashed* ids: production categorical ids
    are hashes, so popular rows scatter across the table instead of
    clustering at low ids (which would flatter page-granular caching)."""
    for _ in range(TRACE_STEPS):
        ids = permutation[zipf_indices(ROWS, IDS_PER_STEP, rng, alpha=1.1)]
        cache.read(ids, backing)
    return cache.stats, backing.bytes_read


def comparison():
    results = {}
    weights = np.random.default_rng(0).normal(
        size=(ROWS, DIM)).astype(np.float32)
    permutation = np.random.default_rng(42).permutation(ROWS)
    for name, factory in (
            ("sw-cache-lru", lambda: SetAssociativeCache(
                capacity_rows=CAPACITY, row_dim=DIM, ways=32, policy="lru")),
            ("sw-cache-lfu", lambda: SetAssociativeCache(
                capacity_rows=CAPACITY, row_dim=DIM, ways=32, policy="lfu")),
            ("uvm", lambda: UVMPageCache(CAPACITY, DIM, rows_per_page=512))):
        backing = ArrayBackingStore(weights.copy())
        stats, pcie_bytes = run_trace(factory(), backing,
                                      np.random.default_rng(1), permutation)
        results[name] = (stats.hit_rate, pcie_bytes)
    return results


def test_cache_vs_uvm(benchmark, report):
    results = benchmark.pedantic(comparison, rounds=1, iterations=1)
    total_ids = TRACE_STEPS * IDS_PER_STEP
    rows = []
    for name, (hit_rate, pcie_bytes) in results.items():
        # time per step = HBM time for hits + PCIe time for missed bytes
        hbm_t = total_ids * DIM * 4 / HBM_BW
        pcie_t = pcie_bytes / PCIE_BW
        rows.append((name, f"{hit_rate:.1%}",
                     f"{pcie_bytes / 1e6:.1f} MB",
                     f"{(hbm_t + pcie_t) * 1e3:.2f} ms"))
    report("Section 4.1.3: software cache vs UVM on a Zipf DLRM trace",
           ["cache", "hit rate", "PCIe traffic", "modeled lookup time"],
           rows)
    lru_hit, lru_bytes = results["sw-cache-lru"]
    uvm_hit, uvm_bytes = results["uvm"]
    assert lru_hit > uvm_hit
    assert lru_bytes < uvm_bytes
    # end-to-end flavour of the ~15% claim: the software cache's modeled
    # lookup path is at least 10% faster than UVM's
    def modeled(nm):
        hit, byts = results[nm]
        return total_ids * DIM * 4 / HBM_BW + byts / PCIE_BW
    assert modeled("sw-cache-lru") < 0.9 * modeled("uvm")
    # LFU also functional and competitive on a skewed trace
    lfu_hit, _ = results["sw-cache-lfu"]
    assert lfu_hit > uvm_hit

"""Anatomy of a DLRM training iteration: where the time goes and what
overlaps with what (paper Fig. 9, Fig. 12, Eq. 1).

Renders the iteration's task DAG as an ASCII timeline for model A2 on the
128-GPU prototype, compares the Eq. 1 closed form against the
discrete-event engine (including steady-state inter-batch pipelining),
and shows how the picture changes as the cluster grows — the AlltoAll
takes over the critical path, exactly the paper's scaling story.

Run:  python examples/iteration_anatomy.py
"""

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.core import (PipelineSchedule, dlrm_iteration_tasks,
                        iteration_latency, steady_state_iteration_time)
from repro.models import full_spec
from repro.perf import TrainingSetup, component_times, render_timeline


def main():
    spec = full_spec("A2")

    print("=== one iteration, A2 @ 128 GPUs (batch 64K) ===\n")
    setup = TrainingSetup(spec=spec, topology=PROTOTYPE_TOPOLOGY(16),
                          global_batch=65536, load_imbalance=1.15)
    t = component_times(setup)
    schedule = PipelineSchedule(dlrm_iteration_tasks(t))
    print(render_timeline(schedule))
    print(f"\ncritical path: {' -> '.join(schedule.critical_path())}")
    print(f"Eq. 1 latency:        {iteration_latency(t) * 1e3:7.1f} ms")
    print(f"DAG makespan (cold):  {schedule.makespan * 1e3:7.1f} ms")
    print(f"DAG steady state:     "
          f"{steady_state_iteration_time(t) * 1e3:7.1f} ms "
          f"(inter-batch pipelining)")
    print(f"fully serialized:     {t.serialized_total * 1e3:7.1f} ms")

    print("\n=== how the critical path shifts with cluster size ===\n")
    for nodes in (1, 4, 16):
        topo = PROTOTYPE_TOPOLOGY(nodes)
        scaled = TrainingSetup(spec=spec, topology=topo,
                               global_batch=512 * topo.world_size,
                               load_imbalance=1.15)
        ct = component_times(scaled)
        sched = PipelineSchedule(dlrm_iteration_tasks(ct))
        path = sched.critical_path()
        a2a_on_path = any("a2a" in p for p in path)
        print(f"{topo.world_size:4d} GPUs: iteration "
              f"{sched.makespan * 1e3:6.1f} ms, "
              f"AlltoAll {'ON ' if a2a_on_path else 'off'} the critical "
              f"path  ({' -> '.join(p for p in path[:4])} ...)")
    print("\nThe paper's Section 5.3.1 conclusion, visible in the DAG: "
          "at cluster scale\nthe exposed AlltoAll dominates the "
          "iteration, which is why quantized comms\n(Fig 13) buys so "
          "much.")


if __name__ == "__main__":
    main()

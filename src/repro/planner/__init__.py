"""Multi-path representation planning (MP-Rec, PAPERS.md).

Picks a representation *per embedding table* — full fp32, fp16/bf16/int8
storage, TT-compressed cores, or exact-but-slow cold cache placement —
under a memory/bandwidth budget and a quality floor, scoring candidates
with the existing perf models (:mod:`repro.perf` rooflines,
:mod:`repro.sharding.cost_model`) and *measured* per-table
quantization/compression error. The emitted
:class:`RepresentationPlan` is consumed by
``NeoTrainer(..., representation_plan=...)`` for training-side storage
and by ``freeze(..., plan=...)`` for the serving export, and
:func:`repro.fleet.tenancy.plan_tenancy` partitions one shared budget
across the tenants of a multi-tenant fleet.
"""

from .candidates import (PlannerCostModel, TableCandidates,
                         enumerate_candidates)
from .plan import (REPRESENTATION_KINDS, PlanBudget, PlanError,
                   RepresentationPlan, TableAssignment)
from .planner import (RepresentationPlanner, measure_ne_gap,
                      plan_representation, uniform_plan)

__all__ = [
    "REPRESENTATION_KINDS",
    "TableAssignment",
    "PlanBudget",
    "RepresentationPlan",
    "PlanError",
    "PlannerCostModel",
    "TableCandidates",
    "enumerate_candidates",
    "RepresentationPlanner",
    "plan_representation",
    "uniform_plan",
    "measure_ne_gap",
]

"""Golden regression for the train-while-serving co-simulation.

The seeded co-sim is a measurement instrument, so its curve is pinned
*bitwise*: staleness, NE, goodput per cadence must reproduce exactly.
The degenerate cadences anchor the two ends of the design space against
independently-run references:

* swap-every-step must reproduce the pure-serving
  :class:`~repro.serving.LoadReport` bit for bit (swaps never touch the
  schedule), and
* never-swap must reproduce the pure-training losses bit for bit and
  answer every request with version 0, bitwise equal to a plain serve
  of the initial snapshot.

The pinned constants are tied to the repo's seeded synthetic pipeline;
a change here means the co-simulation's observable behavior changed and
the goldens must be consciously re-derived.
"""

import numpy as np
import pytest

from repro.core import TrainingLoop
from repro.models.zoo import full_spec
from repro.obs import MetricRegistry
from repro.online import (CoSimulation, OnlineConfig, cadence_from_sizing,
                          run_cadence_sweep)
from repro.online.cosim import HELD_OUT_OFFSET
from repro.serving import InferenceServer, PoissonLoadGen, freeze
from repro.serving.loadgen import summarize

from .helpers import tiny_config, tiny_dataset, tiny_trainer

CONFIG = tiny_config(num_tables=2, rows=96, dim=8, dense_dim=4,
                     avg_pooling=2.0, bottom_mlp=(8,), top_mlp=(8,))
COSIM_CONFIG = OnlineConfig(num_steps=8, swap_every_steps=1,
                            train_step_time_s=0.01, qps=800, slo_s=5e-3,
                            seed=0, eval_batch_size=128)
CADENCES = [1, 2, 4, 0]

# the pinned curve: (cadence, swaps, stale-steps mean/max, stale-s mean,
# serving NE, NE gap, goodput qps, p99 s) per cadence, bitwise
GOLDEN_FRESH_NE = 0.9308283130292521
GOLDEN_CURVE = [
    (1, 8, 0.0, 0, 0.005334451591984732,
     0.9944286337809038, 0.06360032075165178,
     781.3208070687332, 0.00223657782894358),
    (2, 4, 0.484375, 1, 0.010178201591984733,
     0.9992253242710346, 0.06839701124178255,
     781.3208070687332, 0.00223657782894358),
    (4, 2, 1.609375, 3, 0.021428201591984733,
     1.017511980920316, 0.08668366789106385,
     781.3208070687332, 0.00223657782894358),
    (0, 0, 3.609375, 8, 0.04142820159198474,
     1.0526147851821217, 0.12178647215286964,
     781.3208070687332, 0.00223657782894358),
]


def make_loop():
    trainer = tiny_trainer(CONFIG, world=2, seed=0, scheme="table_wise")
    return TrainingLoop(trainer, tiny_dataset(CONFIG, seed=1, noise=0.2),
                        global_batch_size=8, eval_every=100)


@pytest.fixture(scope="module")
def sweep():
    results = []
    report = run_cadence_sweep(make_loop, CADENCES, COSIM_CONFIG,
                               results_out=results)
    return report, results


class TestPinnedCurve:
    def test_curve_is_bitwise_stable(self, sweep):
        report, _ = sweep
        assert report.fresh_ne == GOLDEN_FRESH_NE
        assert len(report.points) == len(GOLDEN_CURVE)
        for p, (cad, swaps, ss_mean, ss_max, sec_mean, ne, gap, goodput,
                p99) in zip(report.points, GOLDEN_CURVE):
            assert p.swap_every_steps == cad
            assert p.num_swaps == swaps
            assert p.staleness_steps_mean == ss_mean
            assert p.staleness_steps_max == ss_max
            assert p.staleness_s_mean == sec_mean
            assert p.serving_ne == ne
            assert p.ne_gap == gap
            assert p.goodput_qps == goodput
            assert p.p99_s == p99

    def test_ne_gap_monotone_in_staleness(self, sweep):
        report, _ = sweep
        assert report.ne_gap_monotone_in_staleness()
        means = [p.staleness_steps_mean for p in report.points]
        assert means == sorted(means)  # slower cadence -> staler answers

    def test_schedule_identical_across_cadences(self, sweep):
        """Hot-swap is free for the request path: every cadence prices
        and schedules the identical batch plan, bit for bit."""
        _, results = sweep
        ref = [(o.request_id, o.dispatch_s, o.completion_s,
                o.batch_samples) for o in results[0].serve.outcomes]
        for r in results[1:]:
            assert [(o.request_id, o.dispatch_s, o.completion_s,
                     o.batch_samples) for o in r.serve.outcomes] == ref

    def test_no_requests_lost_to_swaps(self, sweep):
        _, results = sweep
        for r in results:
            assert r.shed_during_swap == 0
            assert r.serve.num_completed + r.serve.num_shed == \
                r.report.num_offered
        # most-frequent cadence really did publish after every step
        assert results[0].num_swaps == COSIM_CONFIG.num_steps
        assert sorted(results[0].serve.requests_per_version()) == \
            list(range(COSIM_CONFIG.num_steps + 1))


class TestDegenerateCadences:
    def test_swap_every_step_matches_pure_serving_report(self, sweep):
        """Cadence-1 co-sim LoadReport == an independent pure-serving
        load test over the same trace and the initial snapshot: the swap
        machinery adds exactly nothing to the schedule."""
        _, results = sweep
        cosim = results[0]
        loop = make_loop()
        servable = freeze(loop.trainer)
        horizon = COSIM_CONFIG.num_steps * COSIM_CONFIG.train_step_time_s
        gen = PoissonLoadGen.for_duration(COSIM_CONFIG.qps, horizon,
                                          seed=COSIM_CONFIG.seed)
        server = InferenceServer(servable)
        result = server.serve(gen.requests(loop.dataset))
        report = summarize(result, offered_qps=COSIM_CONFIG.qps,
                           num_offered=gen.num_requests,
                           slo_s=COSIM_CONFIG.slo_s)
        assert cosim.report == report  # dataclass equality: bitwise

    def test_never_swap_matches_pure_training(self, sweep):
        """Cadence-0 co-sim trains the identical trajectory as a plain
        loop: serving traffic cannot perturb training."""
        _, results = sweep
        cosim = results[-1]
        assert cosim.config.swap_every_steps == 0
        ref = make_loop().run(COSIM_CONFIG.num_steps)
        assert cosim.training.losses == ref.losses
        assert cosim.training.eval_steps == ref.eval_steps
        assert cosim.training.eval_ne == ref.eval_ne

    def test_never_swap_serves_only_version_zero(self, sweep):
        _, results = sweep
        cosim = results[-1]
        assert len(cosim.snapshots) == 1
        assert all(o.model_version == 0 for o in cosim.serve.outcomes)
        # and the answers are bitwise a plain serve of snapshot v0
        loop = make_loop()
        horizon = COSIM_CONFIG.num_steps * COSIM_CONFIG.train_step_time_s
        gen = PoissonLoadGen.for_duration(COSIM_CONFIG.qps, horizon,
                                          seed=COSIM_CONFIG.seed)
        plain = InferenceServer(freeze(loop.trainer)).serve(
            gen.requests(loop.dataset))
        assert set(plain.responses) == set(cosim.serve.responses)
        for rid, resp in plain.responses.items():
            np.testing.assert_array_equal(cosim.serve.responses[rid], resp)


class TestCoSimPlumbing:
    def test_staleness_metrics_recorded(self):
        metrics = MetricRegistry()
        cfg = OnlineConfig(num_steps=2, swap_every_steps=1,
                           train_step_time_s=0.01, qps=300,
                           eval_batch_size=64)
        CoSimulation(make_loop(), cfg, metrics=metrics).run()
        snap = metrics.snapshot()
        assert snap["serving.swaps"] == 2
        assert snap["online.requests"] > 0
        assert snap["online.shed_during_swap"] == 0
        assert "online.serving_ne" in snap
        assert "online.ne_gap" in snap

    def test_replicas_partition_traffic(self):
        cfg = OnlineConfig(num_steps=2, swap_every_steps=1,
                           train_step_time_s=0.01, qps=300,
                           eval_batch_size=64, replicas=2)
        result = CoSimulation(make_loop(), cfg).run()
        assert len(result.replica_results) == 2
        per_replica = [r.num_completed + r.num_shed
                       for r in result.replica_results]
        assert sum(per_replica) == result.report.num_offered
        assert result.shed_during_swap == 0
        ids = [o.request_id for o in result.serve.outcomes]
        assert ids == sorted(ids)

    def test_held_out_eval_is_disjoint_from_training(self):
        assert HELD_OUT_OFFSET > TrainingLoop.EVAL_OFFSET

    def test_config_validation(self):
        good = dict(num_steps=2, swap_every_steps=1,
                    train_step_time_s=0.01, qps=300)
        OnlineConfig(**good)
        for bad in (dict(num_steps=0), dict(swap_every_steps=-1),
                    dict(train_step_time_s=0.0), dict(qps=0.0),
                    dict(slo_s=0.0), dict(replicas=0),
                    dict(eval_batch_size=0), dict(num_requests=0)):
            with pytest.raises(ValueError):
                OnlineConfig(**{**good, **bad})

    def test_cadence_from_sizing(self):
        spec = full_spec("A1")
        swap_every, step_time, sizing = cadence_from_sizing(
            spec, target_qps=2e6, freshness_budget_s=30.0)
        assert swap_every >= 1
        assert step_time == pytest.approx(4096 / sizing.achieved_qps)
        assert swap_every == max(1, round(30.0 / step_time))
        with pytest.raises(ValueError):
            cadence_from_sizing(spec, target_qps=2e6,
                                freshness_budget_s=0.0)

"""Tests for the mixed-precision cache: FP32 accumulation over FP16/INT8
backing tables (the [57] design)."""

import numpy as np
import pytest

from repro.cache import (LowPrecisionBackingStore,
                         MixedPrecisionEmbeddingTable)
from repro.embedding import EmbeddingTableConfig, SparseGradient


def make_table(h=64, d=8, cache_rows=32, precision="fp16", seed=0):
    cfg = EmbeddingTableConfig("mp", h, d)
    return MixedPrecisionEmbeddingTable(
        cfg, cache_rows=cache_rows, ways=32, precision=precision,
        rng=np.random.default_rng(seed))


def grad_for(rows, values, h=64):
    return SparseGradient(rows=np.asarray(rows, dtype=np.int64),
                          values=np.asarray(values, dtype=np.float32),
                          num_embeddings=h)


class TestLowPrecisionBackingStore:
    def test_writes_round(self):
        store = LowPrecisionBackingStore(np.ones((4, 2)), precision="fp16")
        store.write_rows(np.array([0]),
                         np.array([[1.0 + 2 ** -13, 1.0]],
                                  dtype=np.float32))
        assert store.read_rows(np.array([0]))[0][0] == np.float32(1.0)

    def test_storage_bytes(self):
        store = LowPrecisionBackingStore(np.zeros((10, 8)),
                                         precision="fp16")
        assert store.storage_bytes() == 10 * 8 * 2
        store8 = LowPrecisionBackingStore(np.zeros((10, 8)),
                                          precision="int8")
        assert store8.storage_bytes() == 10 * 8 + 10 * 8

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            LowPrecisionBackingStore(np.zeros((2, 2)), precision="fp32")


class TestMixedPrecisionTable:
    def test_forward_matches_backing(self):
        table = make_table()
        out = table.forward(np.array([3], dtype=np.int64),
                            np.array([0, 1], dtype=np.int64))
        np.testing.assert_array_equal(out[0], table.backing.rows[3])

    def test_hot_row_accumulates_small_updates(self):
        """THE mixed-precision claim: updates below the fp16 ULP survive
        in the FP32 cache, but would vanish in a pure-fp16 table."""
        h, d = 64, 8
        start = np.ones((h, d), dtype=np.float32)
        mixed = MixedPrecisionEmbeddingTable(
            EmbeddingTableConfig("mp", h, d), cache_rows=64,
            precision="fp16", weight=start)
        pure = LowPrecisionBackingStore(start.copy(), precision="fp16")

        tiny = 1e-4  # below fp16 ULP at 1.0 (~4.9e-4)
        steps = 50
        hot = np.array([5], dtype=np.int64)
        offsets = np.array([0, 1], dtype=np.int64)
        for _ in range(steps):
            mixed.forward(hot, offsets)
            g = mixed.backward(np.full((1, d), 1.0, dtype=np.float32))
            mixed.sgd_step(g, lr=tiny)
            # pure low-precision path: read, update, write back (rounds)
            row = pure.read_rows(hot)
            pure.write_rows(hot, row - tiny)

        # pure fp16 lost every update
        np.testing.assert_array_equal(pure.read_rows(hot)[0],
                                      np.ones(d, dtype=np.float32))
        # the cache accumulated them; flush rounds ONCE
        final = mixed.checkpoint()
        expected = 1.0 - steps * tiny
        assert final[5][0] == pytest.approx(expected, abs=5e-4)
        assert final[5][0] < 1.0  # progress was actually made

    def test_cold_rows_round_per_touch(self):
        """Rows evicted between touches round each time — bounded loss."""
        table = make_table(h=256, d=4, cache_rows=32)
        offsets = np.array([0, 1], dtype=np.int64)
        # touch 64 distinct rows against a 32-row cache to force evictions
        for row in range(0, 256, 4):
            ids = np.array([row], dtype=np.int64)
            table.forward(ids, offsets)
            g = table.backward(np.ones((1, 4), dtype=np.float32))
            table.sgd_step(g, lr=0.01)
        assert table.cache.stats.evictions > 0
        final = table.checkpoint()
        assert np.all(np.isfinite(final))

    def test_checkpoint_flushes_once(self):
        table = make_table()
        ids = np.array([1], dtype=np.int64)
        offsets = np.array([0, 1], dtype=np.int64)
        table.forward(ids, offsets)
        g = table.backward(np.ones((1, 8), dtype=np.float32))
        table.sgd_step(g, lr=0.5)
        ckpt = table.checkpoint()
        # after flush, backing matches checkpoint and is fp16-rounded
        np.testing.assert_array_equal(ckpt, table.backing.rows)
        from repro import lowp
        np.testing.assert_array_equal(ckpt, lowp.fp16_roundtrip(ckpt))

    def test_memory_bytes_accounting(self):
        table = make_table(h=100, d=8, cache_rows=32, precision="fp16")
        expected = 100 * 8 * 2 + 32 * 8 * 4
        assert table.memory_bytes() == expected
        # mixed precision beats full fp32 when cache << table
        assert table.memory_bytes() < 100 * 8 * 4

    def test_int8_backing(self):
        table = make_table(precision="int8")
        out = table.forward(np.array([0, 1], dtype=np.int64),
                            np.array([0, 2], dtype=np.int64))
        assert np.all(np.isfinite(out))

    def test_cache_too_small_raises(self):
        with pytest.raises(ValueError):
            make_table(cache_rows=16)  # < ways (32)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            make_table().backward(np.zeros((1, 8), dtype=np.float32))

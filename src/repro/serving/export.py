"""Freezing a trained model into an immutable servable artifact.

Training and serving want opposite things from the same weights:
training needs mutable shards, optimizer state and exact gradients;
serving needs an immutable forward-only snapshot that is cheap to
replicate, quantize and place across the memory hierarchy. ``freeze``
is the boundary: it snapshots a :class:`repro.core.NeoTrainer` (or a
single-process :class:`repro.models.DLRM`) into a
:class:`ServableModel`:

* **fp32 path** — bitwise-identical forward to the source model's eval
  forward (the parity tests assert this exactly);
* **quantized paths** — embedding weights round through fp16/bf16/int8
  storage at freeze time (Section 4.1.4 storage precisions), with the
  per-table max quantization error recorded on the artifact so serving
  error budgets are *measured*, not asserted;
* **hierarchical placement** — an optional per-node HBM budget: tables
  are packed hot-first (smallest first, maximizing the count of
  arena-served tables) and the overflow is served through the software
  cache in front of a DRAM backing store, the CacheEmbedding serving
  arrangement over :mod:`repro.cache`.

All weight arrays are marked read-only; an optimizer step against a
frozen model raises instead of silently corrupting the serving fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import lowp, nn
from ..cache import CACHE_KINDS, ArrayBackingStore, make_cache
from ..data.datagen import MiniBatch
from ..data.freq import FrequencyStats
from ..embedding import (EmbeddingTable, FusedEmbeddingCollection,
                         TTEmbeddingTable, lengths_to_offsets)
from ..embedding.dedup import dedup_cache_read, dedup_forward
from ..embedding.kernels import segment_sum
from ..models.dlrm import DLRM, DLRMConfig
from ..nn import functional as F

__all__ = ["FreezeConfig", "ServableModel", "freeze"]

_EMB_BYTES = {"fp32": 4, "fp16": 2, "bf16": 2, "int8": 1}


@dataclass(frozen=True)
class FreezeConfig:
    """How to snapshot a model for serving.

    ``precision`` is the embedding *storage* precision (dense MLP weights
    always serve in fp32 — they are a rounding error of the footprint).
    ``hot_bytes`` is the HBM budget for arena-resident tables; ``None``
    serves everything from the arena. Cold tables are served through any
    :class:`repro.cache.RowCache`: ``cache_kind`` names the organization
    (built via :func:`repro.cache.make_cache`), ``cache_fraction`` sizes
    its capacity as a fraction of each table's rows, and ``cache_config``
    carries kind-specific knobs (``ways=``, ``chunk_rows=``, ...).
    ``dedup`` routes serve-path lookups through
    :mod:`repro.embedding.dedup` so each unique id in a dispatch pays one
    arena/cache read (bitwise identical output).

    The pre-RowCache spellings ``cache_rows_fraction=`` and
    ``cache_ways=`` were removed after their deprecation window; pass
    ``cache_fraction=`` / ``cache_config={'ways': ...}``.
    """

    precision: str = "fp32"
    hot_bytes: Optional[float] = None
    cache_kind: str = "set_associative"
    cache_fraction: float = 0.25
    cache_config: Optional[Dict] = None
    dedup: bool = True

    def __post_init__(self) -> None:
        if self.precision not in _EMB_BYTES:
            raise ValueError(
                f"precision must be one of {sorted(_EMB_BYTES)}, "
                f"got {self.precision!r}")
        if self.hot_bytes is not None and self.hot_bytes < 0:
            raise ValueError("hot_bytes must be >= 0")
        if self.cache_kind not in CACHE_KINDS:
            raise ValueError(
                f"cache_kind must be one of {list(CACHE_KINDS)}, "
                f"got {self.cache_kind!r}")
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in (0, 1]")


class _ColdTable:
    """Forward-only pooled lookup through the software cache.

    Wraps a read-only backing store plus any :class:`repro.cache.RowCache`
    (built via :func:`repro.cache.make_cache`); rows are exact (the cache
    is a placement model, not an approximation) so the pooled output is
    bitwise-identical to a direct lookup while hit/miss traffic
    accumulates in ``cache.stats`` for the perf model. With ``dedup``,
    each unique id in a dispatch touches the cache once
    (:func:`repro.embedding.dedup.dedup_cache_read`).
    """

    def __init__(self, name: str, weight: np.ndarray, pooling_mode: str,
                 cache_kind: str, cache_fraction: float,
                 cache_config: Optional[Dict] = None,
                 dedup: bool = True) -> None:
        self.name = name
        self.pooling_mode = pooling_mode
        self.dedup = dedup
        self.backing = ArrayBackingStore(weight)
        # the store copies its input (astype), so freeze its copy too
        self.backing.rows.flags.writeable = False
        num_rows, dim = weight.shape
        target = max(1, int(num_rows * cache_fraction))
        self.cache = make_cache(cache_kind, row_dim=dim,
                                capacity_rows=target,
                                **dict(cache_config or {}))
        self.rows_requested = 0
        self.rows_read = 0

    def warm(self, histogram: np.ndarray) -> int:
        """Pre-pack the cache from a frequency histogram (kinds that
        support it); warm traffic is excluded from the byte counters."""
        warm = getattr(self.cache, "warm", None)
        if warm is None:
            return 0
        count = warm(histogram, self.backing)
        self.backing.reset_counters()
        return count

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if not len(indices):
            rows = np.zeros((0, self.backing.row_dim), dtype=np.float32)
        elif self.dedup:
            rows, unique_count = dedup_cache_read(
                self.cache, indices, self.backing)
            self.rows_requested += len(indices)
            self.rows_read += unique_count
        else:
            rows = self.cache.read(indices, self.backing)
            self.rows_requested += len(indices)
            self.rows_read += len(indices)
        out = segment_sum(rows, offsets)
        if self.pooling_mode == "mean":
            lengths = np.diff(offsets)
            out /= np.maximum(lengths, 1).astype(np.float32)[:, None]
        return out


class _TTServingTable:
    """Forward-only pooled lookup over frozen TT cores.

    The representation planner may assign a table the ``tt`` path: the
    trained fp32 weight is TT-SVD-decomposed at freeze time
    (:meth:`repro.embedding.TTEmbeddingTable.from_weight`) and rows are
    re-materialized per lookup from the read-only cores — trading
    contraction FLOPs for an order-of-magnitude storage cut.
    """

    def __init__(self, name: str, weight: np.ndarray, pooling_mode: str,
                 ranks) -> None:
        self.name = name
        self.pooling_mode = pooling_mode
        self.table = TTEmbeddingTable.from_weight(name, weight, ranks=ranks)
        for core in self.table.cores:
            core.flags.writeable = False

    @property
    def storage_bytes(self) -> int:
        return int(sum(c.nbytes for c in self.table.cores))

    def max_error(self, weight: np.ndarray) -> float:
        """Measured max |fp32 - materialized| against the source weight."""
        if not weight.size:
            return 0.0
        return float(np.max(np.abs(weight - self.table.materialize())))

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        offsets = np.asarray(offsets, dtype=np.int64)
        out = self.table.forward(np.asarray(indices, dtype=np.int64),
                                 offsets)
        if self.pooling_mode == "mean":
            lengths = np.diff(offsets)
            out /= np.maximum(lengths, 1).astype(np.float32)[:, None]
        return out


def _quantize_weight(weight: np.ndarray, precision: str) -> np.ndarray:
    if precision == "fp32":
        return weight.astype(np.float32)
    if precision == "fp16":
        return lowp.fp16_roundtrip(weight).astype(np.float32)
    if precision == "bf16":
        return lowp.bf16_roundtrip(weight).astype(np.float32)
    codes, scale, offset = lowp.quantize_int8_rowwise(weight)
    return lowp.dequantize_int8_rowwise(codes, scale, offset).astype(
        np.float32)


@dataclass
class ServableModel:
    """An immutable forward-only DLRM snapshot for the serving fleet.

    Built via :func:`freeze`; exposes :meth:`forward` (logits) and
    :meth:`predict` (probabilities) over :class:`MiniBatch` inputs, plus
    the footprint/quantization metadata capacity planning needs. The
    underlying weight arrays are read-only numpy views.
    """

    config: DLRMConfig
    precision: str
    bottom: nn.MLP
    top: nn.MLP
    interaction: nn.Module
    projections: Dict[str, nn.Linear]
    hot_tables: Optional[FusedEmbeddingCollection]
    cold_tables: Dict[str, _ColdTable]
    quantization_error: Dict[str, float] = field(default_factory=dict)
    # training steps the source had completed at freeze time — snapshot
    # provenance the online hot-swap slot uses for staleness accounting
    source_step: int = 0
    # route serve-path lookups through repro.embedding.dedup: each unique
    # id per dispatch pays one arena read (output is bitwise identical)
    dedup: bool = True
    dedup_rows_requested: int = 0
    dedup_rows_read: int = 0
    # plan-aware artifacts: TT-compressed tables, the per-table kind map
    # and the per-table stored bytes (uniform exports leave these empty)
    tt_tables: Dict[str, _TTServingTable] = field(default_factory=dict)
    representation: Dict[str, str] = field(default_factory=dict)
    table_storage_bytes: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def hot_table_names(self) -> List[str]:
        return self.hot_tables.names if self.hot_tables is not None else []

    @property
    def cold_table_names(self) -> List[str]:
        return sorted(self.cold_tables)

    @property
    def tt_table_names(self) -> List[str]:
        return sorted(self.tt_tables)

    def max_quantization_error(self) -> float:
        """Largest per-element |fp32 - stored| across all tables."""
        return max(self.quantization_error.values(), default=0.0)

    def embedding_storage_bytes(self) -> int:
        """Serving footprint of the embedding tables. Plan-aware exports
        sum the per-table stored bytes the plan chose; uniform exports
        use the single storage precision (int8 includes the per-row
        float32 scale/offset pair)."""
        if self.table_storage_bytes:
            return int(sum(self.table_storage_bytes.values()))
        per_element = _EMB_BYTES[self.precision]
        total = 0
        for t in self.config.tables:
            total += t.num_parameters * per_element
            if self.precision == "int8":
                total += t.num_embeddings * 8
        return total

    def dense_storage_bytes(self) -> int:
        return self.config.num_dense_parameters() * 4

    def storage_bytes(self) -> int:
        return self.embedding_storage_bytes() + self.dense_storage_bytes()

    # ------------------------------------------------------------------
    def _pooled(self, batch: MiniBatch) -> Dict[str, np.ndarray]:
        pooled: Dict[str, np.ndarray] = {}
        if self.hot_tables is not None:
            if self.dedup:
                for name in self.hot_table_names:
                    indices, offsets = batch.sparse[name]
                    pooled[name], unique_count = dedup_forward(
                        self.hot_tables.table(name), indices, offsets)
                    self.dedup_rows_requested += len(indices)
                    self.dedup_rows_read += unique_count
            else:
                hot_inputs = {name: batch.sparse[name]
                              for name in self.hot_table_names}
                pooled = self.hot_tables.forward(hot_inputs)
        for name, table in self.cold_tables.items():
            indices, offsets = batch.sparse[name]
            pooled[name] = table.forward(indices, offsets)
        for name, tt_table in self.tt_tables.items():
            indices, offsets = batch.sparse[name]
            pooled[name] = tt_table.forward(indices, offsets)
        return pooled

    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Logits of shape (B,) — the same arithmetic as
        :meth:`repro.models.DLRM.forward` over frozen weights."""
        dense_out = self.bottom.forward(batch.dense)
        pooled = self._pooled(batch)
        features = [dense_out]
        for t in self.config.tables:
            value = pooled[t.name]
            if t.name in self.projections:
                value = self.projections[t.name].forward(value)
            features.append(value)
        interacted = self.interaction.forward_list(features)
        return self.top.forward(interacted)[:, 0]

    def predict(self, batch: MiniBatch) -> np.ndarray:
        """Click probabilities of shape (B,)."""
        return F.sigmoid(self.forward(batch))

    def nnz(self, batch: MiniBatch) -> int:
        """Total embedding rows a batch touches (perf-model input)."""
        return int(sum(len(ids) for ids, _ in batch.sparse.values()))


def _freeze_array(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a, dtype=np.float32)
    a.flags.writeable = False
    return a


def freeze(source, config: Optional[FreezeConfig] = None,
           step: Optional[int] = None,
           frequency_stats: Optional[FrequencyStats] = None,
           plan=None) -> ServableModel:
    """Snapshot a trainer or reference model into a :class:`ServableModel`.

    ``source`` is a :class:`repro.core.NeoTrainer` (exported via its
    ``to_local_model``, i.e. rank-0 dense replicas + gathered shards) or
    a :class:`repro.models.DLRM`. ``step`` overrides the recorded
    training-step provenance; by default a trainer's own step counter is
    stamped onto the artifact (``source_step``).

    ``frequency_stats`` (a :class:`repro.data.FrequencyStats`, typically
    from the ingestion service's ``track_frequencies``) makes the
    hot/cold packing frequency-aware: tables are packed into the HBM
    budget by observed accesses *per byte* instead of smallest-first,
    and cold-tier caches that support histogram warm-up (the
    ``freq_aware`` kind) are pre-packed with each table's hottest rows
    before the artifact serves its first request.

    ``plan`` is a :class:`repro.planner.RepresentationPlan`: instead of
    one uniform storage precision and budget-driven hot/cold packing,
    each table takes the representation the planner assigned it —
    ``full``/``fp16``/``bf16``/``int8`` arena-resident, ``tt``
    (TT-SVD-compressed cores), or ``cold`` (exact fp32 behind the
    software cache). With a plan, ``cfg.precision`` and
    ``cfg.hot_bytes`` are ignored (the plan already made those calls)
    while the cache knobs still shape the cold tier; the artifact's
    ``precision`` reads ``"mixed"`` and per-table stored bytes land in
    ``table_storage_bytes``.
    """
    cfg = config if config is not None else FreezeConfig()
    if step is None:
        step = int(getattr(source, "steps", 0))
    model = source.to_local_model() if hasattr(source, "to_local_model") \
        else source
    if not isinstance(model, DLRM):
        raise TypeError(
            f"freeze() needs a NeoTrainer or DLRM, got {type(source)!r}")
    dlrm_config = model.config

    # dense stack: fresh layers with copied, read-only weights
    bottom = nn.MLP((dlrm_config.dense_dim,) + dlrm_config.bottom_mlp,
                    final_activation="relu", name="bottom")
    top = nn.MLP((dlrm_config.interaction_dim,) + dlrm_config.top_mlp + (1,),
                 name="top")
    projections: Dict[str, nn.Linear] = {}
    if dlrm_config.project_features:
        for t in dlrm_config.tables:
            projections[t.name] = nn.Linear(
                t.embedding_dim, dlrm_config.embedding_dim,
                name=f"proj.{t.name}")
    dst_params = bottom.parameters()
    for t in dlrm_config.tables:
        if t.name in projections:
            dst_params.extend(projections[t.name].parameters())
    dst_params += top.parameters()
    for dst, src in zip(dst_params, model.dense_parameters()):
        dst.data = _freeze_array(src.data.copy())

    if plan is not None:
        return _freeze_planned(model, cfg, plan, step, frequency_stats,
                               bottom, top, projections)

    # embeddings: quantize at freeze time, then place hot/cold
    quantized: Dict[str, np.ndarray] = {}
    errors: Dict[str, float] = {}
    for t in dlrm_config.tables:
        weight = model.embeddings.table(t.name).weight
        q = _quantize_weight(weight, cfg.precision)
        quantized[t.name] = q
        errors[t.name] = float(np.max(np.abs(weight - q))) \
            if weight.size else 0.0

    per_element = _EMB_BYTES[cfg.precision]
    hot: List[EmbeddingTable] = []
    cold: Dict[str, _ColdTable] = {}
    if frequency_stats is not None:
        # frequency-aware packing: spend the HBM budget on the tables
        # with the most observed accesses per byte
        def hotness_per_byte(t):
            return frequency_stats.total(t.name) / max(
                1, t.num_parameters * per_element)
        order = sorted(dlrm_config.tables,
                       key=lambda t: (-hotness_per_byte(t), t.name))
    else:
        # smallest-first packing maximizes how many tables stay
        # arena-served; the big cold tables are exactly the ones the
        # cache tier is for
        order = sorted(dlrm_config.tables, key=lambda t: (t.num_parameters,
                                                          t.name))
    budget = cfg.hot_bytes if cfg.hot_bytes is not None else float("inf")
    for t in order:
        table_bytes = t.num_parameters * per_element
        if table_bytes <= budget:
            budget -= table_bytes
            hot.append(EmbeddingTable(t, weight=quantized[t.name]))
        else:
            cold[t.name] = _ColdTable(
                t.name, _freeze_array(quantized[t.name]), t.pooling_mode,
                cfg.cache_kind, cfg.cache_fraction, cfg.cache_config,
                dedup=cfg.dedup)
            if frequency_stats is not None:
                cold[t.name].warm(frequency_stats.histogram(
                    t.name, t.num_embeddings))
    hot_collection = None
    if hot:
        # keep config order inside the collection (feature order is config
        # order in forward(); the arena regroups by dim internally anyway)
        hot.sort(key=lambda table: [t.name for t in dlrm_config.tables]
                 .index(table.name))
        hot_collection = FusedEmbeddingCollection(hot, fusion="arena")
        # a view's writeable flag is captured at creation, so freeze the
        # arena storage AND every table's view of it
        for group in hot_collection.arena.groups:
            group.storage.flags.writeable = False
            for view in group.views:
                view.flags.writeable = False

    return ServableModel(
        config=dlrm_config, precision=cfg.precision, bottom=bottom, top=top,
        interaction=dlrm_config.make_interaction(), projections=projections,
        hot_tables=hot_collection, cold_tables=cold,
        quantization_error=errors, source_step=step, dedup=cfg.dedup)


def _freeze_planned(model: DLRM, cfg: FreezeConfig, plan, step: int,
                    frequency_stats: Optional[FrequencyStats],
                    bottom: nn.MLP, top: nn.MLP,
                    projections: Dict[str, nn.Linear]) -> ServableModel:
    """Place each table per a :class:`repro.planner.RepresentationPlan`
    (duck-typed: anything with an ``assignments`` name->assignment map
    carrying ``kind``/``tt_ranks`` works, so serving never imports the
    planner package)."""
    dlrm_config = model.config
    assignments = plan.assignments
    missing = [t.name for t in dlrm_config.tables
               if t.name not in assignments]
    if missing:
        raise ValueError(f"plan has no assignment for tables {missing}")

    hot: List[EmbeddingTable] = []
    cold: Dict[str, _ColdTable] = {}
    tt_tables: Dict[str, _TTServingTable] = {}
    errors: Dict[str, float] = {}
    representation: Dict[str, str] = {}
    table_bytes: Dict[str, int] = {}
    for t in dlrm_config.tables:
        weight = model.embeddings.table(t.name).weight
        assignment = assignments[t.name]
        kind = assignment.kind
        representation[t.name] = kind
        if kind in ("full", "fp16", "bf16", "int8"):
            precision = "fp32" if kind == "full" else kind
            q = _quantize_weight(weight, precision)
            errors[t.name] = float(np.max(np.abs(weight - q))) \
                if weight.size else 0.0
            hot.append(EmbeddingTable(t, weight=q))
            table_bytes[t.name] = t.num_parameters * _EMB_BYTES[precision]
            if kind == "int8":
                table_bytes[t.name] += t.num_embeddings * 8
        elif kind == "tt":
            ranks = assignment.tt_ranks or (8, 8)
            tt = _TTServingTable(t.name, weight, t.pooling_mode, ranks)
            errors[t.name] = tt.max_error(weight)
            tt_tables[t.name] = tt
            table_bytes[t.name] = tt.storage_bytes
        elif kind == "cold":
            cold[t.name] = _ColdTable(
                t.name, _freeze_array(weight.copy()), t.pooling_mode,
                cfg.cache_kind, cfg.cache_fraction, cfg.cache_config,
                dedup=cfg.dedup)
            if frequency_stats is not None:
                cold[t.name].warm(frequency_stats.histogram(
                    t.name, t.num_embeddings))
            errors[t.name] = 0.0
            table_bytes[t.name] = t.num_parameters * 4
        else:
            raise ValueError(
                f"plan assigns table {t.name!r} unknown kind {kind!r}")

    hot_collection = None
    if hot:
        hot_collection = FusedEmbeddingCollection(hot, fusion="arena")
        for group in hot_collection.arena.groups:
            group.storage.flags.writeable = False
            for view in group.views:
                view.flags.writeable = False

    return ServableModel(
        config=dlrm_config, precision="mixed", bottom=bottom, top=top,
        interaction=dlrm_config.make_interaction(), projections=projections,
        hot_tables=hot_collection, cold_tables=cold,
        quantization_error=errors, source_step=step, dedup=cfg.dedup,
        tt_tables=tt_tables, representation=representation,
        table_storage_bytes=table_bytes)

"""Tests for the multi-path representation planner (`repro.planner`).

The invariants the fuzz drills: a returned plan NEVER exceeds the hot
memory budget, never exceeds the per-table quality floor, and is a
deterministic function of (model, budget, cost). Edge cases: an empty
budget demotes everything to the exact cold tier, an abundant budget
keeps everything full, single-table models plan fine, and a measured-NE
floor converges because cold is exact.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models import DLRM
from repro.planner import (PlanBudget, PlanError, PlannerCostModel,
                           RepresentationPlan, RepresentationPlanner,
                           enumerate_candidates, plan_representation,
                           uniform_plan)
from repro.serving import freeze

from .helpers import tiny_config, tiny_dataset, tiny_trainer

FAST_COST = PlannerCostModel(allow_tt=False)


def make_model(num_tables=4, rows=64, dim=8, seed=0):
    return DLRM(tiny_config(num_tables, rows, dim), seed=seed)


def full_bytes(model):
    return sum(t.num_parameters * 4 for t in model.config.tables)


class TestPlanEdgeCases:
    def test_empty_budget_goes_all_cold(self):
        model = make_model()
        plan = plan_representation(model, PlanBudget(hot_bytes=0),
                                   cost=FAST_COST)
        assert plan.counts_by_kind() == {"cold": 4}
        assert plan.hot_bytes() == 0

    def test_abundant_budget_stays_all_full(self):
        model = make_model()
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model)), cost=FAST_COST)
        assert plan.counts_by_kind() == {"full": 4}
        assert plan.max_error() == 0.0

    def test_no_budget_means_all_full(self):
        model = make_model()
        plan = plan_representation(model, None, cost=FAST_COST)
        assert plan.counts_by_kind() == {"full": 4}

    def test_single_table_model(self):
        model = make_model(num_tables=1)
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) // 2),
            cost=FAST_COST)
        assert len(plan.assignments) == 1
        assert plan.hot_bytes() <= full_bytes(model) // 2

    def test_half_budget_compresses_not_cold(self):
        # fp16 alone meets a 50% budget; cold should not be needed
        model = make_model()
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.5),
            cost=FAST_COST)
        assert plan.hot_bytes() <= full_bytes(model) * 0.5
        assert "cold" not in plan.counts_by_kind()

    def test_quality_floor_zero_forbids_lossy(self):
        model = make_model()
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.5,
                              quality_floor=0.0), cost=FAST_COST)
        # only exact kinds allowed: full stays, overflow goes cold
        assert set(plan.counts_by_kind()) <= {"full", "cold"}
        assert plan.max_error() == 0.0

    def test_deterministic(self):
        budget = PlanBudget(hot_bytes=full_bytes(make_model()) * 0.4)
        a = plan_representation(make_model(), budget, cost=FAST_COST)
        b = plan_representation(make_model(), budget, cost=FAST_COST)
        assert a.as_dict() == b.as_dict()

    def test_tt_selected_for_tt_structured_weights(self):
        # plant exactly-TT weights: rank-2 cores materialized back
        model = make_model(num_tables=2, rows=64, dim=16, seed=3)
        from repro.embedding import TTEmbeddingTable
        for table in model.embeddings.tables:
            tt = TTEmbeddingTable.from_weight(table.config.name,
                                              table.weight, ranks=(2, 2))
            table.weight[...] = tt.materialize()
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.2,
                              quality_floor=1e-4),
            cost=PlannerCostModel(tt_rank_options=((2, 2),)))
        assert "tt" in plan.counts_by_kind()
        assert plan.hot_bytes() <= full_bytes(model) * 0.2


class TestPlanObject:
    def test_validate_raises_over_budget(self):
        model = make_model()
        plan = plan_representation(model, None, cost=FAST_COST)
        bad = RepresentationPlan(assignments=plan.assignments,
                                 budget=PlanBudget(hot_bytes=1))
        with pytest.raises(PlanError):
            bad.validate()

    def test_training_precision_mapping(self):
        model = make_model()
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.3),
            cost=FAST_COST)
        for name in plan.assignments:
            kind = plan.kind_of(name)
            expect = kind if kind in ("fp16", "bf16", "int8") else "fp32"
            assert plan.training_precision(name) == expect

    def test_uniform_plan_matches_kind(self):
        model = make_model()
        plan = uniform_plan(model, "fp16", cost=FAST_COST)
        assert plan.counts_by_kind() == {"fp16": 4}
        assert plan.hot_bytes() == full_bytes(model) // 2

    def test_memory_saving_fraction(self):
        model = make_model()
        plan = uniform_plan(model, "fp16", cost=FAST_COST)
        assert plan.memory_saving() == pytest.approx(0.5)

    def test_candidates_measure_real_error(self):
        model = make_model()
        t = model.config.tables[0]
        weight = model.embeddings.tables[0].weight
        cands = enumerate_candidates(t, weight, FAST_COST)
        fp16 = cands.option("fp16")
        expect = float(np.max(np.abs(
            weight - weight.astype(np.float16).astype(np.float32))))
        assert fp16.error == pytest.approx(expect)
        assert cands.option("full").error == 0.0
        assert cands.option("cold").error == 0.0


class TestNEFloor:
    def test_ne_floor_pass_converges(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=7)
        batch = tiny_dataset(config, seed=1).batch(64, 0)
        planner = RepresentationPlanner(cost=FAST_COST)
        plan = planner.plan(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.3,
                              ne_floor=1e-9),
            eval_batch=batch)
        assert plan.measured_ne_gap is not None
        assert plan.measured_ne_gap <= 1e-9
        plan.validate()  # floor recorded on the plan and honoured

    def test_loose_ne_floor_keeps_compression(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=7)
        batch = tiny_dataset(config, seed=1).batch(64, 0)
        planner = RepresentationPlanner(cost=FAST_COST)
        plan = planner.plan(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.3,
                              ne_floor=0.5),
            eval_batch=batch)
        assert plan.measured_ne_gap is not None
        assert plan.measured_ne_gap <= 0.5


class TestPlannedFreeze:
    def test_planned_freeze_serves_within_quantization_error(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=2)
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.3),
            cost=FAST_COST)
        servable = freeze(model, plan=plan)
        assert servable.precision == "mixed"
        assert servable.representation == {
            n: plan.kind_of(n) for n in plan.assignments}
        batch = tiny_dataset(config, seed=5).batch(16, 1)
        golden = freeze(model)
        diff = np.max(np.abs(servable.forward(batch)
                             - golden.forward(batch)))
        # int8 is the coarsest allowed representation here
        assert diff < 5e-3

    def test_planned_freeze_storage_matches_plan(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=2)
        plan = plan_representation(
            model, PlanBudget(hot_bytes=full_bytes(model) * 0.3),
            cost=FAST_COST)
        servable = freeze(model, plan=plan)
        assert servable.embedding_storage_bytes() == plan.total_bytes()

    def test_all_cold_planned_freeze_is_bitwise(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=2)
        plan = plan_representation(model, PlanBudget(hot_bytes=0),
                                   cost=FAST_COST)
        servable = freeze(model, plan=plan)
        batch = tiny_dataset(config, seed=5).batch(16, 1)
        np.testing.assert_array_equal(servable.forward(batch),
                                      freeze(model).forward(batch))

    def test_planner_accepts_trainer(self):
        config = tiny_config(4, 64, 8)
        trainer = tiny_trainer(config, world=2, seed=1)
        plan = plan_representation(
            trainer, PlanBudget(hot_bytes=full_bytes(trainer) * 0.4),
            cost=FAST_COST)
        assert set(plan.assignments) == {t.name for t in config.tables}
        servable = freeze(trainer, plan=plan)
        assert servable.precision == "mixed"


class TestTrainerIntegration:
    def test_plan_precisions_reach_shards(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=4)
        plan = uniform_plan(model, "fp16", cost=FAST_COST)
        trainer = tiny_trainer(config, world=2, seed=4,
                               representation_plan=plan)
        from repro.embedding import QuantizedEmbeddingTable
        quantized = [t for t in trainer._shard_tables.values()
                     if isinstance(t, QuantizedEmbeddingTable)]
        # every shard (incl. data-parallel replicas) trains quantized
        assert len(quantized) == len(trainer._shard_tables) >= 3
        ds = tiny_dataset(config, seed=4)
        for step in range(2):
            trainer.train_step(ds.batch(8, step).split(2))
        # post-step storage sync: fp16 roundtrip is idempotent
        for t in quantized:
            assert t.quantization_error() == 0.0

    def test_plan_must_cover_all_tables(self):
        config = tiny_config(3, 64, 8)
        model = DLRM(config, seed=4)
        plan = uniform_plan(model, "fp16", cost=FAST_COST)
        partial = RepresentationPlan(
            assignments={k: v for k, v in list(plan.assignments.items())[:1]},
            budget=plan.budget)
        with pytest.raises(ValueError, match="no assignment"):
            tiny_trainer(config, world=2, representation_plan=partial)


class TestPlannerFuzz:
    @given(budget_frac=st.floats(min_value=0.0, max_value=1.2),
           floor=st.one_of(st.none(),
                           st.floats(min_value=0.0, max_value=0.1)),
           seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_plan_never_violates_budget_or_floor(self, budget_frac, floor,
                                                 seed):
        model = make_model(num_tables=3, rows=48, dim=8, seed=seed)
        budget = PlanBudget(hot_bytes=full_bytes(model) * budget_frac,
                            quality_floor=floor)
        plan = plan_representation(model, budget, cost=FAST_COST)
        assert plan.hot_bytes() <= budget.hot_bytes
        if floor is not None:
            assert plan.max_error() <= floor
        assert set(plan.assignments) == {t.name for t in
                                         model.config.tables}
        plan.validate()  # must not raise

"""Feature-interaction layers for DLRM.

The reference DLRM architecture concatenates the bottom-MLP output with the
pooled embedding vectors and takes all pairwise dot products (optionally
keeping the dense vector itself). This is the "interaction" block between
the AlltoAll and the top MLP in Fig. 9 of the paper.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .layers import Module

__all__ = ["DotInteraction", "CatInteraction"]


class DotInteraction(Module):
    """Pairwise dot-product interaction.

    Input is a list of ``F`` feature vectors, each of shape ``(B, D)``
    (one dense vector from the bottom MLP plus one pooled embedding per
    sparse feature). Output is ``(B, D + F*(F-1)/2)``: the dense vector
    concatenated with the strictly-lower-triangular entries of the
    ``F x F`` Gram matrix.
    """

    def __init__(self, self_interaction: bool = False) -> None:
        self.self_interaction = self_interaction
        self._stacked: Optional[np.ndarray] = None
        self._num_features = 0
        self._dim = 0

    def output_dim(self, num_features: int, dim: int) -> int:
        """Width of the interaction output for ``num_features`` inputs."""
        offset = 0 if self.self_interaction else 1
        pairs = sum(range(num_features - offset + 1)) if self.self_interaction \
            else num_features * (num_features - 1) // 2
        return dim + pairs

    def _tril_indices(self, f: int) -> tuple:
        offset = 0 if self.self_interaction else -1
        return np.tril_indices(f, k=offset)

    def forward_list(self, features: List[np.ndarray]) -> np.ndarray:
        """Forward over a list of (B, D) arrays; first entry is the dense x.

        Rank-stacked mode: (R, B, D) features produce (R, B, D + P)
        output, slice ``r`` bitwise identical to the 2-D path on rank
        ``r``'s feature slices.
        """
        if not features:
            raise ValueError("need at least one feature")
        dims = {f.shape for f in features}
        if len(dims) != 1:
            raise ValueError(f"all features must share shape, got {dims}")
        stacked = np.stack(features, axis=-2).astype(np.float32)  # (..., F, D)
        self._stacked = stacked
        self._num_features = stacked.shape[-2]
        self._dim = stacked.shape[-1]
        rows, cols = self._tril_indices(self._num_features)
        if stacked.ndim == 4:
            gram = np.einsum("rbfd,rbgd->rbfg", stacked, stacked)
            flat = gram[:, :, rows, cols]  # (R, B, P)
        else:
            gram = np.einsum("bfd,bgd->bfg", stacked, stacked)
            flat = gram[:, rows, cols]  # (B, P)
        return np.concatenate([features[0], flat],
                              axis=-1).astype(np.float32)

    # Module interface: treat a pre-stacked (B, F, D) array as the input.
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError("DotInteraction.forward expects a (B, F, D) array")
        return self.forward_list([x[:, i, :] for i in range(x.shape[1])])

    def backward_list(self, dy: np.ndarray) -> List[np.ndarray]:
        """Backward returning per-feature gradients, each (B, D) — or
        each (R, B, D) in rank-stacked mode."""
        if self._stacked is None:
            raise RuntimeError("backward called before forward")
        f, d = self._stacked.shape[-2:]
        d_dense = dy[..., :d]
        d_flat = dy[..., d:]
        rows, cols = self._tril_indices(f)
        # gram is x x^T; symmetrizing also yields the required factor of 2
        # on diagonal (self-interaction) terms since d(x.x)/dx = 2x.
        if self._stacked.ndim == 4:
            r, b = self._stacked.shape[:2]
            d_gram = np.zeros((r, b, f, f), dtype=np.float32)
            d_gram[:, :, rows, cols] = d_flat
            d_gram = d_gram + d_gram.transpose(0, 1, 3, 2)
            d_stacked = np.einsum("rbfg,rbgd->rbfd", d_gram, self._stacked)
            grads = [d_stacked[:, :, i, :].astype(np.float32)
                     for i in range(f)]
        else:
            b = self._stacked.shape[0]
            d_gram = np.zeros((b, f, f), dtype=np.float32)
            d_gram[:, rows, cols] = d_flat
            d_gram = d_gram + d_gram.transpose(0, 2, 1)
            d_stacked = np.einsum("bfg,bgd->bfd", d_gram, self._stacked)
            grads = [d_stacked[:, i, :].astype(np.float32) for i in range(f)]
        grads[0] = grads[0] + d_dense
        return grads

    def backward(self, dy: np.ndarray) -> np.ndarray:
        grads = self.backward_list(dy)
        return np.stack(grads, axis=-2)


class CatInteraction(Module):
    """Plain concatenation interaction (the DLRM "cat" variant)."""

    def __init__(self) -> None:
        self._shapes: Optional[List[tuple]] = None

    def output_dim(self, num_features: int, dim: int) -> int:
        return num_features * dim

    def forward_list(self, features: List[np.ndarray]) -> np.ndarray:
        self._shapes = [f.shape for f in features]
        return np.concatenate(features, axis=-1).astype(np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError("CatInteraction.forward expects a (B, F, D) array")
        return self.forward_list([x[:, i, :] for i in range(x.shape[1])])

    def backward_list(self, dy: np.ndarray) -> List[np.ndarray]:
        if self._shapes is None:
            raise RuntimeError("backward called before forward")
        grads = []
        start = 0
        for shape in self._shapes:
            width = shape[-1]
            grads.append(dy[..., start:start + width].astype(np.float32))
            start += width
        return grads

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return np.stack(self.backward_list(dy), axis=-2)

"""Unit tests for the metric registry: counters/gauges/histograms,
label-keyed identity, named scopes and snapshot/reset semantics."""

import pytest

from repro.obs import (Counter, Gauge, Histogram, MetricRegistry,
                       MetricScope, default_registry)


class TestCounters:

    def test_inc_and_get_or_create_identity(self):
        reg = MetricRegistry()
        c = reg.counter("requests")
        c.inc()
        c.inc(4)
        assert reg.counter("requests") is c
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricRegistry().counter("n")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_distinguish_metrics(self):
        reg = MetricRegistry()
        a = reg.counter("wire_bytes", collective="all_reduce")
        b = reg.counter("wire_bytes", collective="all_gather")
        assert a is not b
        a.inc(100)
        b.inc(1)
        assert reg.by_label("wire_bytes", "collective") == {
            "all_reduce": 100, "all_gather": 1}

    def test_label_order_does_not_matter(self):
        reg = MetricRegistry()
        a = reg.counter("m", x=1, y=2)
        b = reg.counter("m", y=2, x=1)
        assert a is b

    def test_type_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")


class TestGaugesAndHistograms:

    def test_gauge_moves_both_ways(self):
        g = MetricRegistry().gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        h = MetricRegistry().histogram("grad_norm")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.count == 3
        assert h.summary() == {"count": 3, "total": 6.0, "min": 1.0,
                               "max": 3.0, "mean": 2.0}

    def test_empty_histogram_summary(self):
        h = MetricRegistry().histogram("empty")
        assert h.summary()["count"] == 0


class TestScopes:

    def test_scope_prefixes_names(self):
        reg = MetricRegistry()
        comms = reg.scope("comms")
        comms.counter("calls", collective="all_reduce").inc()
        assert reg.counter("comms.calls", collective="all_reduce").value == 1

    def test_scopes_nest(self):
        reg = MetricRegistry()
        inner = reg.scope("a").scope("b")
        assert isinstance(inner, MetricScope)
        inner.counter("c").inc(7)
        assert reg.snapshot() == {"a.b.c": 7}

    def test_scope_snapshot_and_reset_are_windowed(self):
        reg = MetricRegistry()
        reg.scope("comms").counter("calls").inc(2)
        reg.scope("cache").counter("hits").inc(9)
        assert reg.scope("comms").snapshot() == {"comms.calls": 2}
        reg.scope("comms").reset()
        assert reg.scope("comms").snapshot() == {}
        assert reg.scope("cache").snapshot() == {"cache.hits": 9}

    def test_scope_prefix_does_not_leak_to_siblings(self):
        # "comms" scope reset must not clear "comms_extra.*" metrics
        reg = MetricRegistry()
        reg.scope("comms").counter("calls").inc()
        reg.scope("comms_extra").counter("calls").inc()
        reg.scope("comms").reset()
        assert reg.snapshot() == {"comms_extra.calls": 1}

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().scope("")


class TestRegistryViews:

    def test_snapshot_includes_histogram_summaries(self):
        reg = MetricRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").record(5.0)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 5.0

    def test_metrics_iterator_filters_by_prefix(self):
        reg = MetricRegistry()
        reg.counter("comms.calls")
        reg.counter("cache.hits")
        names = {m.name for m in reg.metrics(prefix="comms")}
        assert names == {"comms.calls"}

    def test_reset_all(self):
        reg = MetricRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        reg.reset()
        assert reg.snapshot() == {}

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()
        assert isinstance(default_registry(), MetricRegistry)

    def test_metric_classes_exported(self):
        reg = MetricRegistry()
        assert isinstance(reg.counter("c"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)

"""Mixed-precision embedding storage: a high-precision cache backed by
low-precision tables (paper Section 4.1.4, ref [57]).

Storing tables in FP16/INT8 halves/quarters memory, but *training* through
low precision loses small updates: a gradient step of 1e-4 on a weight of
1.0 rounds away entirely in fp16 (ULP at 1.0 is ~5e-4). The Yang et al.
design fixes this for the rows that matter: hot rows live in a small FP32
software cache where updates accumulate at full precision; only on
eviction is the accumulated value rounded once into the low-precision
backing store. Cold rows — touched rarely — lose at most one rounding per
touch, which is exactly the error profile the paper reports as training-
quality-neutral.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import lowp
from ..embedding.kernels import expand_bag_ids, segment_sum
from ..embedding.optim import merge_duplicate_rows
from ..embedding.table import EmbeddingTableConfig, SparseGradient
from .api import make_cache
from .backing import ArrayBackingStore

__all__ = ["LowPrecisionBackingStore", "MixedPrecisionEmbeddingTable"]


class LowPrecisionBackingStore(ArrayBackingStore):
    """A backing store whose rows round through a storage precision.

    Reads dequantize to FP32; writes re-round. ``storage_bytes`` reports
    the true low-precision footprint.
    """

    def __init__(self, rows: np.ndarray, precision: str = "fp16") -> None:
        if precision not in ("fp16", "bf16", "int8"):
            raise ValueError(
                f"precision must be fp16/bf16/int8, got {precision!r}")
        self.precision = precision
        super().__init__(self._roundtrip(np.asarray(rows,
                                                    dtype=np.float32)))

    def _roundtrip(self, values: np.ndarray) -> np.ndarray:
        if self.precision == "fp16":
            return lowp.fp16_roundtrip(values)
        if self.precision == "bf16":
            return lowp.bf16_roundtrip(values)
        codes, scale, offset = lowp.quantize_int8_rowwise(values)
        return lowp.dequantize_int8_rowwise(codes, scale, offset)

    def write_rows(self, row_ids: np.ndarray, values: np.ndarray) -> None:
        super().write_rows(row_ids, self._roundtrip(
            np.asarray(values, dtype=np.float32)))

    def storage_bytes(self) -> int:
        per_elem = lowp.bytes_per_element(self.precision)
        base = self.rows.size * per_elem
        if self.precision == "int8":
            base += self.num_rows * 8  # per-row scale + offset
        return base


class MixedPrecisionEmbeddingTable:
    """Pooled-lookup table with an FP32 cache over low-precision storage.

    Functionally mirrors :class:`repro.embedding.EmbeddingTable`
    (forward/backward contract) with an :meth:`sgd_step` that
    read-modify-writes *through the cache*, so consecutive small updates
    to hot rows accumulate at FP32 and round only on eviction/flush.
    """

    def __init__(self, config: EmbeddingTableConfig,
                 cache_rows: int = 1024, ways: int = 32,
                 precision: str = "fp16",
                 rng: Optional[np.random.Generator] = None,
                 weight: Optional[np.ndarray] = None) -> None:
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)
        if weight is None:
            limit = 1.0 / np.sqrt(config.num_embeddings)
            weight = rng.uniform(
                -limit, limit,
                size=(config.num_embeddings, config.embedding_dim))
        self.backing = LowPrecisionBackingStore(weight, precision=precision)
        if cache_rows < ways:
            raise ValueError("cache_rows must be at least one set (ways)")
        self.cache = make_cache("set_associative",
                                row_dim=config.embedding_dim,
                                capacity_rows=cache_rows, ways=ways)
        self._saved: Optional[tuple] = None

    @property
    def name(self) -> str:
        return self.config.name

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.diff(offsets)
        rows = self.cache.read(indices, self.backing) if len(indices) else \
            np.zeros((0, self.config.embedding_dim), dtype=np.float32)
        out = segment_sum(rows, offsets)
        if self.config.pooling_mode == "mean":
            out /= np.maximum(lengths, 1).astype(np.float32)[:, None]
        self._saved = (indices, None, lengths)
        return out

    def backward(self, dy: np.ndarray) -> SparseGradient:
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        indices, bag_ids, lengths = self._saved
        if bag_ids is None:
            bag_ids = expand_bag_ids(lengths)
            self._saved = (indices, bag_ids, lengths)
        grad_rows = dy[bag_ids].astype(np.float32)
        if self.config.pooling_mode == "mean":
            denom = np.maximum(lengths, 1).astype(np.float32)
            grad_rows = grad_rows / denom[bag_ids][:, None]
        return SparseGradient(rows=indices, values=grad_rows,
                              num_embeddings=self.config.num_embeddings)

    def sgd_step(self, grad: SparseGradient, lr: float) -> None:
        """Exact merged SGD through the FP32 cache."""
        rows, merged = merge_duplicate_rows(grad.rows, grad.values)
        if len(rows) == 0:
            return
        current = self.cache.read(rows, self.backing)
        self.cache.write(rows, current - lr * merged, self.backing)

    def checkpoint(self) -> np.ndarray:
        """Flush dirty cached rows (one rounding) and return the table."""
        self.cache.flush(self.backing)
        return self.backing.rows.copy()

    def memory_bytes(self) -> int:
        """Total footprint: low-precision store + FP32 cache."""
        cache_bytes = self.cache.capacity_rows \
            * self.config.embedding_dim * 4
        return self.backing.storage_bytes() + cache_bytes

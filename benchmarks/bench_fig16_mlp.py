"""Figs. 16-17: the Appendix A MLP benchmark — 20 layers of 1K/2K/4K
square weights, batch 128..4096, forward+backward+SGD, per precision.

This bench also times the *real* numpy MLP from repro.nn on a scaled-down
version of the same shapes, demonstrating the functional substrate, while
the model projects the V100/A100 numbers.
"""

import numpy as np
import pytest

from repro import nn
from repro.perf import A100, V100, mlp_benchmark

BATCHES = [128, 256, 512, 1024, 2048, 4096]
WIDTHS = [1024, 2048, 4096]


def model_table():
    rows = []
    for width in WIDTHS:
        for batch in BATCHES:
            v = mlp_benchmark(batch, width, 20, V100, "fp32")
            a = mlp_benchmark(batch, width, 20, A100, "tf32")
            rows.append((width, batch,
                         round(v.achieved_tflops, 1),
                         round(a.achieved_tflops, 1)))
    return rows


def test_fig16_17_mlp_model(benchmark, report):
    rows = benchmark(model_table)
    report("Figs 16-17: 20-layer MLP achieved TF/s (fwd+bwd)",
           ["width", "batch", "V100 fp32", "A100 tf32"], rows)
    by_width = {}
    for width, batch, v100, a100 in rows:
        by_width.setdefault(width, []).append((batch, v100, a100))
    for width, series in by_width.items():
        v_series = [v for _, v, _ in series]
        # efficiency grows with batch size (the Fig 16/17 x-axis trend)
        assert all(a <= b * 1.001 for a, b in zip(v_series, v_series[1:]))
    # A100 TF32 beats V100 FP32 everywhere
    assert all(a100 > v100 for _, _, v100, a100 in rows)
    # V100 never exceeds its ceiling
    assert max(v for _, _, v, _ in rows) <= 15.7 * 0.786 * 1.01


def test_real_numpy_mlp_wallclock(benchmark):
    """Time an actual forward+backward through the numpy substrate (a
    scaled-down instance of the Appendix A benchmark)."""
    rng = np.random.default_rng(0)
    mlp = nn.MLP([256] * 6, rng=rng)
    x = rng.normal(size=(256, 256)).astype(np.float32)

    def step():
        y = mlp.forward(x)
        mlp.zero_grad()
        mlp.backward(y)
        return y

    y = benchmark(step)
    assert y.shape == (256, 256)

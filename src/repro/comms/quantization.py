"""Quantized collective communications (paper Section 5.3.2, ref [58]).

The paper halves AlltoAll volume by sending pooled embeddings in FP16 on
the forward pass and gradients in BF16 on the backward pass (BF16's wider
exponent tolerates gradient dynamic range). A codec here is both

* a *numerical transform* — the round-trip through the wire precision,
  applied to real payloads by :mod:`repro.comms.collectives`, and
* a *volume multiplier* — used by the latency model to shrink transfer
  bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import lowp

__all__ = ["CODECS", "get_codec", "wire_bytes", "QuantizedCommsConfig"]


def _fp32(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


CODECS: dict = {
    "fp32": _fp32,
    "fp16": lowp.fp16_roundtrip,
    "bf16": lowp.bf16_roundtrip,
}


def get_codec(precision: str) -> Callable[[np.ndarray], np.ndarray]:
    try:
        return CODECS[precision]
    except KeyError:
        raise ValueError(f"unknown wire precision {precision!r}; expected "
                         f"one of {sorted(CODECS)}") from None


def wire_bytes(num_elements: int, precision: str) -> int:
    """Bytes on the wire for ``num_elements`` at ``precision``."""
    return num_elements * lowp.bytes_per_element(precision)


@dataclass(frozen=True)
class QuantizedCommsConfig:
    """Wire precisions per communication direction.

    The paper's validated recipe for model A2: FP16 forward AlltoAll,
    BF16 backward AlltoAll, FP32 AllReduce (gradient sync stays full
    precision).
    """

    forward_alltoall: str = "fp32"
    backward_alltoall: str = "fp32"
    allreduce: str = "fp32"

    def __post_init__(self) -> None:
        for p in (self.forward_alltoall, self.backward_alltoall,
                  self.allreduce):
            if p not in CODECS:
                raise ValueError(f"unknown wire precision {p!r}")

    @classmethod
    def paper_recipe(cls) -> "QuantizedCommsConfig":
        return cls(forward_alltoall="fp16", backward_alltoall="bf16",
                   allreduce="fp32")

    def forward_codec(self):
        return get_codec(self.forward_alltoall)

    def backward_codec(self):
        return get_codec(self.backward_alltoall)

    def allreduce_codec(self):
        return get_codec(self.allreduce)

    def volume_factor(self, direction: str) -> float:
        """Wire bytes relative to FP32 for the given direction."""
        precision = {
            "forward_alltoall": self.forward_alltoall,
            "backward_alltoall": self.backward_alltoall,
            "allreduce": self.allreduce,
        }[direction]
        return lowp.bytes_per_element(precision) / 4.0

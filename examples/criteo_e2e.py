"""End-to-end production-shaped run on a Criteo-like public workload.

The full Fig. 6 pipeline on the community-standard dataset shape (13
dense + 26 categorical features): hash-shrunk tables (Section 5.3.1), the
sharding planner, the Neo trainer on 4 simulated GPUs, the training loop
with held-out NE evaluation, differential checkpointing (Check-N-Run
style), and a crash-resume demonstrating exact recovery.

Run:  python examples/criteo_e2e.py
"""

import shutil
import tempfile

import numpy as np

from repro import nn
from repro.comms import ClusterTopology, QuantizedCommsConfig
from repro.core import CheckpointManager, NeoTrainer, TrainingLoop
from repro.data import CriteoLikeDataset, criteo_dlrm_config
from repro.embedding import SparseAdaGrad
from repro.nn import WarmupLinearDecay, linear_scaled_lr
from repro.sharding import EmbeddingShardingPlanner, PlannerConfig

WORLD = 4
GLOBAL_BATCH = 128
STEPS = 60


def make_trainer(config, plan, seed=0):
    return NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=WORLD),
        dense_optimizer=lambda p: nn.Adam(
            p, lr=linear_scaled_lr(0.005, GLOBAL_BATCH, 64)),
        sparse_optimizer=SparseAdaGrad(lr=0.1),
        comms_config=QuantizedCommsConfig.paper_recipe(), seed=seed)


def main():
    config = criteo_dlrm_config(max_rows=2000, embedding_dim=8)
    dataset = CriteoLikeDataset(max_rows=2000, embedding_dim=8, noise=0.25,
                                seed=5)
    print(f"Criteo-shaped model: 13 dense + 26 categorical features, "
          f"{config.num_parameters():,} parameters")

    planner = EmbeddingShardingPlanner(PlannerConfig(
        world_size=WORLD, ranks_per_node=WORLD, dp_threshold_rows=50))
    plan = planner.plan(list(config.tables))
    scheme_counts = {}
    for t in config.tables:
        s = plan.scheme_of(t.name).value
        scheme_counts[s] = scheme_counts.get(s, 0) + 1
    print(f"planner chose: {scheme_counts}")

    ckpt_dir = tempfile.mkdtemp(prefix="criteo_ckpt_")
    try:
        trainer = make_trainer(config, plan)
        manager = CheckpointManager(ckpt_dir, differential=True)
        scheduler = WarmupLinearDecay(
            trainer.ranks[0].dense_opt, base_lr=0.01, warmup_steps=10,
            total_steps=STEPS)
        loop = TrainingLoop(trainer, dataset,
                            global_batch_size=GLOBAL_BATCH,
                            eval_every=20, eval_batch_size=2048,
                            checkpoint_manager=manager,
                            checkpoint_every=20,
                            lr_schedulers=[scheduler])
        result = loop.run(STEPS)
        print(f"\ntrained {len(result.losses)} steps; "
              f"loss {result.losses[0]:.4f} -> {result.losses[-1]:.4f}")
        for step, ne in zip(result.eval_steps, result.eval_ne):
            print(f"  step {step:3d}: held-out NE {ne:.4f}")
        diff = manager.history[-1]
        print(f"\ndifferential checkpoint at step {diff.step}: wrote "
              f"{diff.written_rows:,}/{diff.full_rows:,} rows "
              f"({diff.write_fraction:.0%}) — the Check-N-Run saving")

        # crash! restore into a brand-new trainer and verify exactness
        survivor = make_trainer(config, plan, seed=123)  # wrong init
        restored_step = manager.load(survivor)
        for t in config.tables[:5]:
            np.testing.assert_array_equal(survivor.gather_table(t.name),
                                          trainer.gather_table(t.name))
        print(f"crash-resume: restored step {restored_step}, embedding "
              f"state bit-exact with the pre-crash trainer")
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)


if __name__ == "__main__":
    main()

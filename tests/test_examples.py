"""Every example script must run clean end to end.

Examples are the public face of the library; this keeps them green as the
API evolves. Each runs in a subprocess with a generous timeout.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = sorted(
    name for name in os.listdir(os.path.join(REPO_ROOT, "examples"))
    if name.endswith(".py"))


# multi-second end-to-end runs live in the slow tier; the default run
# still covers every other example
SLOW_EXAMPLES = {"criteo_e2e.py", "online_training.py"}


def test_examples_discovered():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", [
    pytest.param(name, marks=pytest.mark.slow)
    if name in SLOW_EXAMPLES else name
    for name in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", script)],
        capture_output=True, text=True, timeout=300, cwd=REPO_ROOT)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} produced no output"

"""Section 4.1.1 (X1): fused multi-table embedding kernel speedup.

The paper reports up to 7x over per-table ``nn.EmbeddingBag`` at the
operator level. Two reproductions:

* the performance model's launch-amortization account across table counts
  (the 7x regime is many small tables);
* a wall-clock measurement of the real numpy operator, where the fused
  collection's single dispatch beats a python-per-table loop.
"""

import numpy as np
import pytest

from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             FusedEmbeddingCollection, lengths_to_offsets)
from repro.perf import V100, fused_speedup

BATCH = 4096
POOL = 32


def model_rows():
    rows = []
    # the 7x regime: many tables, each with little work (small batch
    # share per table — exactly the ~1000s-of-categorical-features case)
    for num_tables in (1, 8, 64, 256, 1000):
        per_table = [2048] * num_tables
        s = fused_speedup(per_table, 32, V100)
        rows.append((num_tables, f"{s:.1f}x"))
    return rows


def test_fused_kernel_model(benchmark, report):
    rows = benchmark(model_rows)
    report("Section 4.1.1: modeled fused-vs-unfused lookup speedup",
           ["tables", "speedup"], rows)
    speedups = [float(r[1].rstrip("x")) for r in rows]
    # monotone in table count; 1x for a single table; multi-x at ~1000
    assert speedups[0] == pytest.approx(1.0)
    assert all(a <= b * 1.01 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 3.0


def test_fused_operator_wallclock(benchmark, report):
    """Real operator: fused dispatch vs naive per-table python loop."""
    import time
    rng = np.random.default_rng(0)
    num_tables = 64
    configs = [EmbeddingTableConfig(f"t{i}", 1000, 16, avg_pooling=4.0)
               for i in range(num_tables)]
    coll = FusedEmbeddingCollection.from_configs(configs, rng=rng)
    solo_tables = [EmbeddingTable(c, weight=coll.table(c.name).weight)
                   for c in configs]
    batch = {}
    for c in configs:
        lengths = np.full(64, 4, dtype=np.int64)
        batch[c.name] = (rng.integers(0, 1000, size=256).astype(np.int64),
                         lengths_to_offsets(lengths))

    def fused():
        return coll.forward(batch)

    out = benchmark(fused)
    assert len(out) == num_tables
    # compare with the unfused loop once, outside the timed region
    t0 = time.perf_counter()
    for t in solo_tables:
        indices, offsets = batch[t.name]
        t.forward(indices, offsets)
    unfused_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    coll.forward(batch)
    fused_s = time.perf_counter() - t0
    report("fused vs per-table wall clock (numpy substrate)",
           ["variant", "seconds"],
           [("per-table loop", f"{unfused_s:.4f}"),
            ("fused collection", f"{fused_s:.4f}")])
    # functional equivalence is what matters here; timing parity accepted
    for t in solo_tables:
        indices, offsets = batch[t.name]
        np.testing.assert_array_equal(out[t.name],
                                      t.forward(indices, offsets))

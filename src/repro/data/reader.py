"""Disaggregated data-ingestion pipeline (paper Fig. 6, Section 4.4).

Production Neo streams training data from the Tectonic filesystem through
a tier of reader machines that pre-process and feed trainers over the
frontend network. We reproduce the pipeline's *structure* and its cost
accounting:

* readers produce per-rank local sub-batches in the combined format;
* a double-buffered prefetch queue models the overlap of batch ``i+1``'s
  ingestion with batch ``i``'s training (Section 4.3);
* transfer accounting distinguishes the frontend network hop (reader ->
  trainer host) from the host->device copy (pinned PCIe).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional


from .datagen import MiniBatch, SyntheticCTRDataset
from .formats import SeparateFormat, host_transfer_time
from .freq import FrequencyStats

__all__ = ["IngestionStats", "DataIngestionService"]


@dataclass
class IngestionStats:
    batches_produced: int = 0
    frontend_bytes: int = 0
    h2d_seconds_pinned: float = 0.0
    h2d_seconds_pageable: float = 0.0
    combined_tensors_per_iter: int = 0
    separate_tensors_per_iter: int = 0


class DataIngestionService:
    """Feeds per-rank sub-batches with prefetch and transfer accounting.

    Parameters
    ----------
    dataset:
        The batch source.
    world_size:
        Number of trainer ranks; each global batch splits evenly.
    prefetch_depth:
        Queue depth. Depth 2 is the paper's double buffering; depth 1
        disables overlap (used for the no-pipelining ablation).
    track_frequencies:
        When true, the reader folds every produced batch's sparse ids
        into a :class:`FrequencyStats` (exposed as
        :attr:`frequency_stats`) — the histogram source that warms
        :class:`repro.cache.FreqAwareCache`.
    """

    def __init__(self, dataset: SyntheticCTRDataset, world_size: int,
                 global_batch_size: int, prefetch_depth: int = 2,
                 track_frequencies: bool = False) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if global_batch_size % world_size:
            raise ValueError(
                f"global batch {global_batch_size} not divisible by "
                f"world size {world_size}")
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        self.dataset = dataset
        self.world_size = world_size
        self.global_batch_size = global_batch_size
        self.prefetch_depth = prefetch_depth
        self.stats = IngestionStats()
        self.frequency_stats: Optional[FrequencyStats] = \
            FrequencyStats() if track_frequencies else None
        self._queue: deque = deque()
        self._next_index = 0

    # ------------------------------------------------------------------
    def _produce(self) -> List[MiniBatch]:
        """Readers materialize one global batch, split across ranks."""
        batch = self.dataset.batch(self.global_batch_size, self._next_index)
        self._next_index += 1
        if self.frequency_stats is not None:
            self.frequency_stats.update(batch)
        shards = batch.split(self.world_size)
        self._account(shards)
        return shards

    def _account(self, shards: List[MiniBatch]) -> None:
        self.stats.batches_produced += 1
        combined_tensors = 0
        separate_tensors = 0
        for shard in shards:
            separate = SeparateFormat(tables=dict(shard.sparse))
            combined = separate.to_combined(list(shard.sparse))
            payload = combined.total_bytes + shard.dense.nbytes \
                + shard.labels.nbytes
            self.stats.frontend_bytes += payload
            # +2 for dense and labels tensors in both layouts
            self.stats.h2d_seconds_pinned += host_transfer_time(
                combined.num_tensors + 2, payload, pinned=True)
            self.stats.h2d_seconds_pageable += host_transfer_time(
                separate.num_tensors + 2, payload, pinned=False)
            combined_tensors = combined.num_tensors + 2
            separate_tensors = separate.num_tensors + 2
        self.stats.combined_tensors_per_iter = combined_tensors
        self.stats.separate_tensors_per_iter = separate_tensors

    # ------------------------------------------------------------------
    def fill(self) -> None:
        """Top up the prefetch queue (reader tier runs ahead of training)."""
        while len(self._queue) < self.prefetch_depth:
            self._queue.append(self._produce())

    def next_batch(self) -> List[MiniBatch]:
        """Pop the next global batch (per-rank list); refills behind it."""
        if not self._queue:
            self.fill()
        shards = self._queue.popleft()
        self.fill()
        return shards

    def seek(self, batch_index: int) -> None:
        """Reposition so the next :meth:`next_batch` serves ``batch_index``.

        Batches are deterministic functions of their index, so rewinding
        the reader replays the exact sample stream — this is what lets
        checkpoint recovery resume on the same data an uninterrupted run
        would have seen. Prefetched batches are discarded (their indices
        no longer line up).
        """
        if batch_index < 0:
            raise ValueError(
                f"batch_index must be non-negative, got {batch_index}")
        self._queue.clear()
        self._next_index = batch_index

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

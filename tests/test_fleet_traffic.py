"""Fleet traffic tests: diurnal NHPP shaping and the Zipf user population.

The contract has three legs: a flat curve must reproduce the historical
flat-Poisson trace *bitwise* (the fleet rides on the serving substrate,
it does not fork it); a diurnal curve must actually move arrivals toward
the peak hours while conserving their count and order; and a Zipf user
population must make hot users recur with byte-identical sample
contents, since recurrence is what replica-local caches measure.
"""

import numpy as np
import pytest

from repro.fleet import DEFAULT_DAY_CURVE, DayCurve, FleetTraffic
from repro.serving import PoissonLoadGen
from repro.serving.loadgen import ARRIVAL_STREAM, USER_STREAM

from .helpers import tiny_system


class TestDayCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            DayCurve(hourly=(1.0,))
        with pytest.raises(ValueError):
            DayCurve(hourly=(1.0, 0.0))
        with pytest.raises(ValueError):
            DayCurve(day_s=0.0)
        with pytest.raises(ValueError):
            DayCurve().cumulative_rate(0.0)

    def test_is_flat(self):
        assert DayCurve(hourly=(2.0, 2.0, 2.0)).is_flat
        assert not DayCurve().is_flat

    def test_multiplier_normalizes_to_mean_one(self):
        curve = DayCurve()  # DEFAULT_DAY_CURVE does not sum to exactly 24
        t = np.linspace(0.0, curve.day_s, 100001)
        assert np.mean(curve.multiplier_at(t)) == pytest.approx(1.0,
                                                                rel=1e-3)
        # an already-normalized flat curve maps to exactly 1.0 everywhere
        flat = DayCurve(hourly=(3.0, 3.0))
        np.testing.assert_allclose(flat.multiplier_at(t), 1.0)

    def test_multiplier_is_periodic(self):
        curve = DayCurve(day_s=60.0)
        t = np.linspace(0.0, 60.0, 977)
        np.testing.assert_allclose(curve.multiplier_at(t),
                                   curve.multiplier_at(t + 60.0))
        np.testing.assert_allclose(curve.multiplier_at(t),
                                   curve.multiplier_at(t + 3 * 60.0))

    def test_multiplier_interpolates_hour_centers(self):
        curve = DayCurve(hourly=(1.0, 3.0), day_s=2.0)
        # hour centers at t=0.5 and t=1.5 carry the normalized values
        assert curve.multiplier_at(0.5) == pytest.approx(0.5)
        assert curve.multiplier_at(1.5) == pytest.approx(1.5)
        # midpoint between centers is the average; midnight wraps
        assert curve.multiplier_at(1.0) == pytest.approx(1.0)
        assert curve.multiplier_at(0.0) == pytest.approx(1.0)

    def test_cumulative_rate_monotone_and_mean_preserving(self):
        curve = DayCurve(day_s=60.0)
        t, cum = curve.cumulative_rate(60.0)
        assert cum[0] == 0.0
        assert np.all(np.diff(cum) >= 0)
        # mean-1 multiplier integrates to the horizon over a whole day
        assert cum[-1] == pytest.approx(60.0, rel=1e-3)


class TestFlatParity:
    """curve=None (and any flat curve) must be the old trace bitwise."""

    def test_arrivals_match_poisson_loadgen_bitwise(self):
        traffic = FleetTraffic(mean_qps=800.0, duration_s=0.5, seed=11)
        gen = PoissonLoadGen(qps=800.0, num_requests=traffic.num_requests,
                             seed=11)
        np.testing.assert_array_equal(traffic.arrival_times(),
                                      gen.arrival_times())

    def test_flat_curve_skips_the_warp(self):
        flat = FleetTraffic(mean_qps=500.0, duration_s=0.5, seed=3,
                            curve=DayCurve(hourly=(2.0, 2.0, 2.0),
                                           day_s=0.5))
        none = FleetTraffic(mean_qps=500.0, duration_s=0.5, seed=3)
        np.testing.assert_array_equal(flat.arrival_times(),
                                      none.arrival_times())

    def test_requests_match_poisson_loadgen_bitwise(self):
        ds = tiny_system().dataset
        traffic = FleetTraffic(mean_qps=200.0, duration_s=0.2, seed=7)
        gen = PoissonLoadGen(qps=200.0, num_requests=traffic.num_requests,
                             seed=7)
        ours, theirs = traffic.requests(ds), gen.requests(ds)
        assert len(ours) == len(theirs)
        for a, b in zip(ours, theirs):
            assert a.request_id == b.request_id
            assert a.arrival_s == b.arrival_s
            assert a.user_id is None
            np.testing.assert_array_equal(a.batch.dense, b.batch.dense)


class TestDiurnalArrivals:
    def _diurnal(self, seed=0, qps=500.0):
        return FleetTraffic(mean_qps=qps, duration_s=60.0,
                            curve=DayCurve(day_s=60.0), seed=seed)

    def test_count_order_and_range_preserved(self):
        traffic = self._diurnal()
        arrivals = traffic.arrival_times()
        assert len(arrivals) == traffic.num_requests
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] >= 0.0
        assert arrivals[-1] <= 60.0 + 1e-9

    def test_peak_hour_denser_than_trough(self):
        arrivals = self._diurnal().arrival_times()
        hour = 60.0 / 24
        # DEFAULT_DAY_CURVE: hour 18 peaks at 1.70, hour 3 troughs at 0.27
        peak = np.sum((arrivals >= 18 * hour) & (arrivals < 19 * hour))
        trough = np.sum((arrivals >= 3 * hour) & (arrivals < 4 * hour))
        assert peak > 3 * trough

    def test_seed_determinism(self):
        np.testing.assert_array_equal(self._diurnal(seed=5).arrival_times(),
                                      self._diurnal(seed=5).arrival_times())
        assert not np.array_equal(self._diurnal(seed=5).arrival_times(),
                                  self._diurnal(seed=6).arrival_times())

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetTraffic(mean_qps=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            FleetTraffic(mean_qps=1.0, duration_s=0.0)
        with pytest.raises(ValueError):
            FleetTraffic(mean_qps=1.0, duration_s=1.0, num_users=-1)


class TestUserPopulation:
    def test_anonymous_by_default(self):
        traffic = FleetTraffic(mean_qps=100.0, duration_s=0.5)
        assert traffic.user_ids() is None
        ds = tiny_system().dataset
        assert all(r.user_id is None for r in traffic.requests(ds))

    def test_user_ids_in_range_and_skewed(self):
        traffic = FleetTraffic(mean_qps=2000.0, duration_s=1.0,
                               num_users=50, zipf_alpha=1.2, seed=0)
        users = traffic.user_ids()
        assert len(users) == traffic.num_requests
        assert users.min() >= 0 and users.max() < 50
        counts = np.bincount(users, minlength=50)
        # Zipf rank order: user 0 is the hottest, the tail is cold
        assert counts[0] == counts.max()
        assert counts[0] > 5 * counts[25:].mean()

    def test_hot_users_resubmit_identical_samples(self):
        ds = tiny_system().dataset
        traffic = FleetTraffic(mean_qps=1000.0, duration_s=0.5,
                               num_users=20, seed=4)
        requests = traffic.requests(ds)
        by_user = {}
        for r in requests:
            assert r.user_id is not None
            if r.user_id in by_user:
                first = by_user[r.user_id]
                np.testing.assert_array_equal(r.batch.dense,
                                              first.batch.dense)
                for name in r.batch.sparse:
                    np.testing.assert_array_equal(
                        r.batch.sparse[name][0], first.batch.sparse[name][0])
            else:
                by_user[r.user_id] = r
        # the population is small enough that recurrence must happen
        assert len(by_user) < len(requests)
        # distinct users carry distinct samples (rows of one bulk draw)
        users = sorted(by_user)
        assert not np.array_equal(by_user[users[0]].batch.dense,
                                  by_user[users[1]].batch.dense)

    def test_user_stream_independent_of_arrival_stream(self):
        base = FleetTraffic(mean_qps=300.0, duration_s=1.0, num_users=30,
                            seed=9)
        shifted = FleetTraffic(mean_qps=300.0, duration_s=1.0, num_users=30,
                               seed=9, stream=ARRIVAL_STREAM + 100)
        # different arrival sub-stream, same seed: arrivals differ but the
        # user population draw is untouched
        assert not np.array_equal(base.arrival_times(),
                                  shifted.arrival_times())
        np.testing.assert_array_equal(base.user_ids(), shifted.user_ids())
        assert USER_STREAM != ARRIVAL_STREAM

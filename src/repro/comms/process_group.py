"""Process-group facade: collectives + traffic accounting + modeled time.

This is the reproduction's analogue of the PyTorch ProcessGroup (NCCL)
interface the paper extends (Section 4.5). It binds together

* the exact functional collectives (data really moves between ranks),
* optional wire quantization (:class:`QuantizedCommsConfig`),
* byte accounting per collective type, and
* the alpha-beta latency model, accumulating a modeled communication time
  alongside the real computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from . import collectives, perf_model
from .quantization import QuantizedCommsConfig, wire_bytes
from .topology import ClusterTopology

__all__ = ["CommsLog", "SimProcessGroup"]


@dataclass
class CommsLog:
    """Accumulated traffic and modeled time, by collective."""

    calls: Dict[str, int] = field(default_factory=dict)
    wire_bytes: Dict[str, int] = field(default_factory=dict)
    modeled_seconds: Dict[str, float] = field(default_factory=dict)

    def record(self, name: str, bytes_on_wire: int, seconds: float) -> None:
        self.calls[name] = self.calls.get(name, 0) + 1
        self.wire_bytes[name] = self.wire_bytes.get(name, 0) + bytes_on_wire
        self.modeled_seconds[name] = (
            self.modeled_seconds.get(name, 0.0) + seconds)

    @property
    def total_bytes(self) -> int:
        return sum(self.wire_bytes.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.modeled_seconds.values())


class SimProcessGroup:
    """All-rank collectives with accounting, for the lock-step trainer."""

    def __init__(self, topology: ClusterTopology,
                 comms_config: Optional[QuantizedCommsConfig] = None) -> None:
        self.topology = topology
        self.comms_config = comms_config or QuantizedCommsConfig()
        self.log = CommsLog()

    @property
    def world_size(self) -> int:
        return self.topology.world_size

    def _check_world(self, inputs: list, name: str) -> None:
        if len(inputs) != self.world_size:
            raise ValueError(
                f"{name} expects one input per rank "
                f"({self.world_size}), got {len(inputs)}")

    # ------------------------------------------------------------------
    def all_reduce(self, inputs: List[np.ndarray]) -> List[np.ndarray]:
        self._check_world(inputs, "all_reduce")
        precision = self.comms_config.allreduce
        out = collectives.all_reduce(
            inputs, codec=self.comms_config.allreduce_codec())
        per_gpu = wire_bytes(int(inputs[0].size), precision)
        seconds = perf_model.allreduce_time(per_gpu, self.topology)
        self.log.record("all_reduce", per_gpu * self.world_size, seconds)
        return out

    def all_to_all(self, inputs: List[List[np.ndarray]],
                   direction: str = "forward_alltoall"
                   ) -> List[List[np.ndarray]]:
        self._check_world(inputs, "all_to_all")
        if direction == "forward_alltoall":
            codec = self.comms_config.forward_codec()
            precision = self.comms_config.forward_alltoall
        elif direction == "backward_alltoall":
            codec = self.comms_config.backward_codec()
            precision = self.comms_config.backward_alltoall
        elif direction == "index":
            # index redistribution is integer data: never quantized
            codec = None
            precision = "fp32"  # ids are 8B but sizes are counted directly
        else:
            raise ValueError(f"unknown direction {direction!r}")
        out = collectives.all_to_all(inputs, codec=codec)
        if direction == "index":
            total_elems = sum(int(np.asarray(x).size) for row in inputs
                              for x in row)
            total_wire = total_elems * 8
        else:
            total_elems = sum(int(np.asarray(x).size) for row in inputs
                              for x in row)
            total_wire = wire_bytes(total_elems, precision)
        per_gpu = total_wire / max(self.world_size, 1)
        seconds = perf_model.alltoall_time(per_gpu, self.topology)
        self.log.record(f"all_to_all/{direction}", total_wire, seconds)
        return out

    def reduce_scatter(self, inputs: List[List[np.ndarray]]
                       ) -> List[np.ndarray]:
        self._check_world(inputs, "reduce_scatter")
        out = collectives.reduce_scatter(inputs)
        per_gpu = sum(int(np.asarray(x).size) for x in inputs[0]) * 4
        seconds = perf_model.reduce_scatter_time(per_gpu, self.topology)
        self.log.record("reduce_scatter", per_gpu * self.world_size, seconds)
        return out

    def all_gather(self, inputs: List[np.ndarray]) -> List[List[np.ndarray]]:
        self._check_world(inputs, "all_gather")
        out = collectives.all_gather(inputs)
        per_gpu = int(np.asarray(inputs[0]).size) * 4
        seconds = perf_model.allgather_time(per_gpu, self.topology)
        self.log.record("all_gather", per_gpu * self.world_size, seconds)
        return out

    def broadcast(self, inputs: List[np.ndarray],
                  root: int = 0) -> List[np.ndarray]:
        self._check_world(inputs, "broadcast")
        out = collectives.broadcast(inputs, root=root)
        per_gpu = int(np.asarray(inputs[root]).size) * 4
        seconds = perf_model.allgather_time(per_gpu, self.topology)
        self.log.record("broadcast", per_gpu * self.world_size, seconds)
        return out

    def reset_log(self) -> None:
        self.log = CommsLog()

"""Tests for reduced-precision embedding table storage."""

import numpy as np
import pytest

from repro.embedding import (EmbeddingTableConfig, QuantizedEmbeddingTable,
                             SparseSGD)


def make_qtable(precision="fp16", h=16, d=8, seed=0):
    cfg = EmbeddingTableConfig("q", h, d, precision=precision)
    return QuantizedEmbeddingTable(cfg, rng=np.random.default_rng(seed))


class TestConstruction:
    def test_fp32_rejected(self):
        cfg = EmbeddingTableConfig("q", 4, 4, precision="fp32")
        with pytest.raises(ValueError):
            QuantizedEmbeddingTable(cfg)

    @pytest.mark.parametrize("precision", ["fp16", "bf16", "int8"])
    def test_initial_weights_are_synced(self, precision):
        table = make_qtable(precision)
        assert table.quantization_error() == 0.0


class TestStorageSemantics:
    def test_sync_rounds_writes(self):
        table = make_qtable("fp16")
        # write a value fp16 cannot represent exactly
        table.weight[0, 0] = np.float32(1.0 + 2 ** -13)
        table.sync_storage()
        assert table.weight[0, 0] == np.float32(1.0)

    def test_bf16_sync(self):
        table = make_qtable("bf16")
        table.weight[0, 0] = np.float32(1.0 + 2 ** -10)
        table.sync_storage()
        assert table.weight[0, 0] == np.float32(1.0)

    def test_lookup_uses_dequantized_values(self):
        table = make_qtable("fp16")
        out = table.forward(np.array([3], dtype=np.int64),
                            np.array([0, 1], dtype=np.int64))
        np.testing.assert_array_equal(out[0], table.weight[3])

    def test_training_step_then_sync(self):
        """Optimizer writes FP32; sync re-rounds, and the quantization
        error introduced is bounded by fp16 ULP."""
        table = make_qtable("fp16")
        table.forward(np.array([1], dtype=np.int64),
                      np.array([0, 1], dtype=np.int64))
        grad = table.backward(np.ones((1, 8), dtype=np.float32))
        SparseSGD(lr=0.01).step(table, grad)
        pre_sync = table.weight[1].copy()
        table.sync_storage()
        err = np.abs(table.weight[1] - pre_sync)
        assert np.all(err <= np.abs(pre_sync) * 2 ** -11 + 1e-8)


class TestFootprint:
    def test_fp16_halves_storage(self):
        q = make_qtable("fp16", h=100, d=64)
        assert q.storage_bytes() == 100 * 64 * 2

    def test_int8_quarter_plus_scales(self):
        q = make_qtable("int8", h=100, d=64)
        assert q.storage_bytes() == 100 * 64 * 1 + 100 * 8

    def test_model_a2_headroom_claim(self):
        """Section 5.3.2: FP16 tables halve a 3 TB model to fit in the 4 TB
        HBM pool with placement headroom."""
        model_fp32 = 3e12
        hbm_total = 4e12
        assert model_fp32 / hbm_total > 0.7  # little headroom in fp32
        assert (model_fp32 / 2) / hbm_total < 0.5  # ample in fp16

"""UVM-style page cache baseline (paper Section 4.1.3).

CUDA unified memory migrates *pages*, not rows: a miss on one row drags its
whole page across PCIe, and eviction throws away every row on the victim
page even if some are hot. The paper's argument for the custom software
cache is exactly this granularity mismatch, plus UVM being capped at PCIe
bandwidth. This class implements the :class:`repro.cache.RowCache`
protocol so it can be compared head-to-head with the row-granular caches
on identical access traces.

Stats note: ``fills`` in the shared :class:`CacheStats` counts *pages*
migrated on demand (the cache's native granularity); the historical
``pages_migrated`` attribute is now a read-only alias of it, so
``reset_stats()`` can no longer clear one counter and miss the other —
the drift the unified protocol removed.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .api import RowCacheBase
from .backing import ArrayBackingStore

__all__ = ["UVMPageCache"]


class UVMPageCache(RowCacheBase):
    """Fully-associative LRU cache at page granularity.

    Parameters
    ----------
    capacity_rows:
        Total rows the fast tier can hold (to compare like-for-like with a
        row cache of equal capacity).
    rows_per_page:
        Migration granularity. UVM pages are 2 MB; for a D=128 fp32 table
        that is 4096 rows per page.
    """

    def __init__(self, capacity_rows: int, row_dim: int,
                 rows_per_page: int = 64) -> None:
        if rows_per_page <= 0 or capacity_rows < rows_per_page:
            raise ValueError(
                "capacity must hold at least one page of rows")
        super().__init__()
        self.rows_per_page = rows_per_page
        self.capacity_pages = capacity_rows // rows_per_page
        self.row_dim = row_dim
        # page_id -> (data (rows_per_page, D), dirty flag)
        self._pages: Dict[int, np.ndarray] = {}
        self._dirty: Dict[int, bool] = {}
        self._lru: Dict[int, int] = {}
        self._clock = 0

    @property
    def capacity_rows(self) -> int:
        return self.capacity_pages * self.rows_per_page

    @property
    def pages_migrated(self) -> int:
        """Pages fetched from the slow tier (alias of ``stats.fills``)."""
        return self.stats.fills

    def _page_of(self, row_id: int) -> int:
        return int(row_id) // self.rows_per_page

    def _page_rows(self, page_id: int, backing: ArrayBackingStore) -> np.ndarray:
        start = page_id * self.rows_per_page
        stop = min(start + self.rows_per_page, backing.num_rows)
        return np.arange(start, stop, dtype=np.int64)

    def _evict_one(self, backing: ArrayBackingStore) -> None:
        victim = min(self._lru, key=self._lru.get)
        self.stats.evictions += 1
        if self._dirty[victim]:
            self.stats.writebacks += 1
            rows = self._page_rows(victim, backing)
            backing.write_rows(rows, self._pages[victim][:len(rows)])
        del self._pages[victim], self._dirty[victim], self._lru[victim]

    def _ensure_page(self, page_id: int, backing: ArrayBackingStore) -> None:
        if page_id in self._pages:
            return
        while len(self._pages) >= self.capacity_pages:
            self._evict_one(backing)
        rows = self._page_rows(page_id, backing)
        data = np.zeros((self.rows_per_page, self.row_dim), dtype=np.float32)
        data[:len(rows)] = backing.read_rows(rows)
        self._pages[page_id] = data
        self._dirty[page_id] = False
        self.stats.fills += 1

    def _touch(self, page_id: int) -> None:
        self._clock += 1
        self._lru[page_id] = self._clock

    def read(self, row_ids: np.ndarray,
             backing: ArrayBackingStore) -> np.ndarray:
        out = np.empty((len(row_ids), self.row_dim), dtype=np.float32)
        for i, row_id in enumerate(np.asarray(row_ids, dtype=np.int64)):
            page = self._page_of(row_id)
            if page in self._pages:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                self._ensure_page(page, backing)
            self._touch(page)
            out[i] = self._pages[page][row_id % self.rows_per_page]
        return out

    def write(self, row_ids: np.ndarray, values: np.ndarray,
              backing: ArrayBackingStore) -> None:
        for i, row_id in enumerate(np.asarray(row_ids, dtype=np.int64)):
            page = self._page_of(row_id)
            if page in self._pages:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                self._ensure_page(page, backing)
            self._touch(page)
            self._pages[page][row_id % self.rows_per_page] = values[i]
            self._dirty[page] = True

    def flush(self, backing: ArrayBackingStore) -> int:
        count = 0
        for page_id, dirty in list(self._dirty.items()):
            if dirty:
                rows = self._page_rows(page_id, backing)
                backing.write_rows(rows, self._pages[page_id][:len(rows)])
                self._dirty[page_id] = False
                self.stats.writebacks += 1
                count += 1
        return count

    def contains(self, row_id: int) -> bool:
        return self._page_of(row_id) in self._pages

    def prefetch_rows(self, row_ids: np.ndarray,
                      backing: ArrayBackingStore) -> int:
        """Stage the pages covering ``row_ids``; page migrations triggered
        here count as ``prefetched_rows`` (in rows), not as misses."""
        staged = 0
        ids = np.asarray(row_ids, dtype=np.int64)
        for page in np.unique(ids // self.rows_per_page):
            page = int(page)
            if page in self._pages:
                continue
            self._ensure_page(page, backing)
            self._touch(page)
            rows = self.rows_per_page
            self.stats.prefetched_rows += rows
            staged += rows
        return staged

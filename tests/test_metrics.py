"""Tests for normalized entropy and calibration metrics."""

import math

import numpy as np
import pytest

from repro.metrics import calibration, log_loss, normalized_entropy, relative_ne


class TestLogLoss:
    def test_perfect_predictions(self):
        p = np.array([1.0, 0.0])
        y = np.array([1.0, 0.0])
        assert log_loss(p, y) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_predictions(self):
        p = np.full(10, 0.5)
        y = (np.arange(10) % 2).astype(float)
        assert log_loss(p, y) == pytest.approx(math.log(2))

    def test_clipping_avoids_inf(self):
        assert np.isfinite(log_loss(np.array([0.0]), np.array([1.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            log_loss(np.zeros(2), np.zeros(3))

    def test_empty(self):
        with pytest.raises(ValueError):
            log_loss(np.zeros(0), np.zeros(0))


class TestNormalizedEntropy:
    def test_base_rate_predictor_is_one(self):
        """Predicting the base rate everywhere gives NE = 1 exactly."""
        y = np.array([1.0] * 3 + [0.0] * 7)
        p = np.full(10, 0.3)
        assert normalized_entropy(p, y) == pytest.approx(1.0)

    def test_better_model_below_one(self):
        y = np.array([1.0, 1.0, 0.0, 0.0])
        p = np.array([0.9, 0.8, 0.1, 0.2])
        assert normalized_entropy(p, y) < 1.0

    def test_worse_than_base_above_one(self):
        y = np.array([1.0, 1.0, 0.0, 0.0])
        p = np.array([0.1, 0.2, 0.9, 0.8])  # anti-correlated
        assert normalized_entropy(p, y) > 1.0

    def test_explicit_base_rate(self):
        y = np.array([1.0, 0.0])
        p = np.array([0.5, 0.5])
        ne = normalized_entropy(p, y, base_rate=0.5)
        assert ne == pytest.approx(1.0)

    def test_lower_is_better_ordering(self):
        y = (np.random.default_rng(0).random(1000) < 0.3).astype(float)
        sharp = np.where(y == 1, 0.8, 0.1)
        dull = np.where(y == 1, 0.4, 0.25)
        assert normalized_entropy(sharp, y) < normalized_entropy(dull, y)


class TestRelativeNE:
    def test_normalizes_to_final(self):
        curve = relative_ne([2.0, 1.5, 1.0])
        np.testing.assert_allclose(curve, [2.0, 1.5, 1.0])

    def test_explicit_reference(self):
        curve = relative_ne([2.0, 1.0], reference=2.0)
        np.testing.assert_allclose(curve, [1.0, 0.5])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            relative_ne([])

    def test_bad_reference_raises(self):
        with pytest.raises(ValueError):
            relative_ne([1.0], reference=0.0)


class TestCalibration:
    def test_perfectly_calibrated(self):
        y = np.array([1.0, 0.0, 1.0, 0.0])
        p = np.full(4, 0.5)
        assert calibration(p, y) == pytest.approx(1.0)

    def test_overprediction(self):
        y = np.array([1.0, 0.0, 0.0, 0.0])
        p = np.full(4, 0.5)
        assert calibration(p, y) == pytest.approx(2.0)

    def test_no_positives_raises(self):
        with pytest.raises(ValueError):
            calibration(np.full(2, 0.5), np.zeros(2))

"""Counters, gauges and histograms behind a process-global registry.

The measured counterparts of the quantities the paper's evaluation is
built on: wire bytes per collective kind (Fig. 20), cache
hit/miss/eviction traffic (Section 4.1.3), embedding lookup rows
(Section 4.1.1) and gradient norms. Components publish into a
:class:`MetricRegistry` through named scopes::

    comms = registry.scope("comms")
    comms.counter("wire_bytes", collective="all_reduce").inc(4096)

Metric identity is ``name`` plus sorted ``labels``; ``counter()`` /
``gauge()`` / ``histogram()`` get-or-create, so call sites never need
registration boilerplate. A process-global default registry
(:func:`default_registry`) exists for ambient instrumentation; components
that need isolation (every :class:`repro.comms.SimProcessGroup`, every
trainer) hold their own registry instance instead.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry", "MetricScope",
           "default_registry"]


def _metric_key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """A streaming distribution: count/total/min/max plus raw samples.

    Runs in this reproduction are small (tens of iterations), so samples
    are kept verbatim; :meth:`summary` reduces them.
    """

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.values: List[float] = []

    def record(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total,
                "min": min(self.values), "max": max(self.values),
                "mean": self.total / self.count}

    def snapshot_value(self) -> Dict[str, float]:
        return self.summary()


class MetricRegistry:
    """Get-or-create registry of metrics, addressable by scoped names."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any]):
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, dict(labels))
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def scope(self, prefix: str) -> "MetricScope":
        """A view that prefixes every metric name with ``prefix.``."""
        return MetricScope(self, prefix)

    # -- inspection -----------------------------------------------------
    def metrics(self, prefix: Optional[str] = None) -> Iterator[Any]:
        """All metric objects, optionally restricted to a name prefix."""
        for metric in self._metrics.values():
            if prefix is None or metric.name.startswith(prefix):
                yield metric

    def by_label(self, name: str, label: str) -> Dict[Any, float]:
        """``{label value -> metric value}`` over metrics named ``name``.

        The accessor behind the legacy per-collective dict views on
        :class:`repro.comms.CommsLog`.
        """
        out: Dict[Any, float] = {}
        for metric in self._metrics.values():
            if metric.name == name and label in metric.labels:
                out[metric.labels[label]] = metric.snapshot_value()
        return out

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """``{scoped key -> value}`` for every matching metric."""
        return {key: m.snapshot_value()
                for key, m in sorted(self._metrics.items())
                if prefix is None or m.name.startswith(prefix)}

    def reset(self, prefix: Optional[str] = None) -> None:
        """Drop all metrics, or only those under a name prefix."""
        if prefix is None:
            self._metrics.clear()
            return
        for key in [k for k, m in self._metrics.items()
                    if m.name.startswith(prefix)]:
            del self._metrics[key]


class MetricScope:
    """A named window onto a registry; scopes nest via :meth:`scope`."""

    def __init__(self, registry: MetricRegistry, prefix: str) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self.registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(self._name(name), **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(self._name(name), **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.registry.histogram(self._name(name), **labels)

    def scope(self, prefix: str) -> "MetricScope":
        return MetricScope(self.registry, self._name(prefix))

    def by_label(self, name: str, label: str) -> Dict[Any, float]:
        return self.registry.by_label(self._name(name), label)

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot(prefix=self.prefix + ".")

    def reset(self) -> None:
        self.registry.reset(prefix=self.prefix + ".")


_DEFAULT_REGISTRY = MetricRegistry()


def default_registry() -> MetricRegistry:
    """The process-global registry for ambient instrumentation."""
    return _DEFAULT_REGISTRY
